//! Instrumented drop-in `Mutex`/`Condvar` for the interleaving checker.
//!
//! The serving crates alias `std::sync::{Mutex, Condvar}` through a
//! per-crate `check` module; with their `check-yield` feature enabled
//! the alias points here instead. Outside an active schedule (or on
//! threads the scheduler doesn't own) every call delegates straight to
//! `std` after one relaxed atomic load, so the wrappers are safe to
//! leave compiled in during ordinary feature-enabled test runs.
//!
//! Under a schedule:
//!
//! * `lock()` becomes a decision point. Contended acquisition parks
//!   the thread with the scheduler (never the OS), so blocking is a
//!   deterministic scheduling event.
//! * every successful acquisition records label-level lock-order
//!   edges; a cycle across the run becomes a `lock-order-cycle`
//!   finding ([`crate::sched`]).
//! * `Condvar::wait` releases the lock, parks with the scheduler, and
//!   re-acquires on wakeup; `wait_timeout` ignores the duration and
//!   fires only as a deterministic *virtual* timeout when nothing else
//!   can run. Spurious wakeups are allowed, exactly like `std`.
//!
//! `RwLock` is deliberately not wrapped: the serving stack uses it
//! only on registry/metrics read paths, which the checker treats as
//! uninstrumented (documented in the README coverage notes).

use crate::sched;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError};
use std::time::Duration;

/// A `std::sync::Mutex` with a scheduler label.
pub struct Mutex<T> {
    label: &'static str,
    inner: std::sync::Mutex<T>,
}

/// Guard mirroring `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T> {
    /// `Some` until dropped; `Option` so `Drop` can release the std
    /// guard before telling the scheduler.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
    /// Whether the acquiring thread was scheduled (decides the drop
    /// path, which must match the acquire path even if a schedule
    /// starts or ends mid-hold).
    scheduled: bool,
}

impl<T> Mutex<T> {
    /// An unlabeled mutex (label shows as `?` in traces/findings).
    pub fn new(value: T) -> Self {
        Self::new_labeled("?", value)
    }

    /// A mutex whose `label` names it in traces, lock-order edges and
    /// deadlock findings. Use one label per *role* (`"ring.state"`),
    /// not per instance, so ordering discipline is checked role-wide.
    pub fn new_labeled(label: &'static str, value: T) -> Self {
        Mutex {
            label,
            inner: std::sync::Mutex::new(value),
        }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires the lock; a decision point under an active schedule.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if sched::scheduled_tid().is_none() {
            return wrap(self.inner.lock(), self, false);
        }
        loop {
            sched::yield_point(self.label);
            match self.inner.try_lock() {
                Ok(g) => {
                    sched::mutex_acquired(self.key(), self.label);
                    return Ok(MutexGuard {
                        inner: Some(g),
                        owner: self,
                        scheduled: true,
                    });
                }
                Err(TryLockError::WouldBlock) => {
                    sched::block_on_mutex(self.key(), self.label);
                }
                Err(TryLockError::Poisoned(p)) => {
                    sched::mutex_acquired(self.key(), self.label);
                    return Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        owner: self,
                        scheduled: true,
                    }));
                }
            }
        }
    }
}

fn wrap<'a, T>(
    res: LockResult<std::sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
    scheduled: bool,
) -> LockResult<MutexGuard<'a, T>> {
    match res {
        Ok(g) => Ok(MutexGuard {
            inner: Some(g),
            owner,
            scheduled,
        }),
        Err(p) => Err(PoisonError::new(MutexGuard {
            inner: Some(p.into_inner()),
            owner,
            scheduled,
        })),
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("label", &self.label).finish()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // panic-ok: `inner` is only None after Drop has run.
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // panic-ok: `inner` is only None after Drop has run.
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let was_held = self.inner.take().is_some();
        if was_held && self.scheduled && sched::scheduled_tid().is_some() {
            sched::mutex_released(self.owner.key(), self.owner.label);
        }
    }
}

/// Result of [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult` (which has no public constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by (virtual or real) timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A `std::sync::Condvar` whose scheduled waits park with the
/// scheduler instead of the OS.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Blocks until notified (spurious wakeups allowed, like `std`).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.scheduled && sched::scheduled_tid().is_some() {
            let owner = guard.owner;
            // Register as a waiter while still holding the lock, so the
            // release decision below parks us atomically — a notifier
            // scheduled during the unlock already sees the registration.
            sched::condvar_prepare_wait(self.key(), false);
            drop(guard); // releases the lock; its decision point parks us
            sched::condvar_finish_wait();
            owner.lock()
        } else {
            let mut guard = guard;
            let owner = guard.owner;
            // panic-ok: `inner` is only None after Drop has run.
            let std_guard = guard.inner.take().expect("guard already released");
            let scheduled = guard.scheduled;
            std::mem::forget(guard); // std guard moved out; skip Drop
            wrap(self.inner.wait(std_guard), owner, scheduled)
        }
    }

    /// Blocks until notified or timed out. Under a schedule the
    /// duration is ignored: the timeout fires deterministically only
    /// when no thread is runnable (virtual time).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.scheduled && sched::scheduled_tid().is_some() {
            let owner = guard.owner;
            // Same registered-before-release dance as `wait`.
            sched::condvar_prepare_wait(self.key(), true);
            drop(guard);
            let timed_out = sched::condvar_finish_wait();
            match owner.lock() {
                Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
                Err(p) => Err(PoisonError::new((
                    p.into_inner(),
                    WaitTimeoutResult(timed_out),
                ))),
            }
        } else {
            let mut guard = guard;
            let owner = guard.owner;
            // panic-ok: `inner` is only None after Drop has run.
            let std_guard = guard.inner.take().expect("guard already released");
            let scheduled = guard.scheduled;
            std::mem::forget(guard);
            match self.inner.wait_timeout(std_guard, dur) {
                Ok((g, t)) => Ok((
                    MutexGuard {
                        inner: Some(g),
                        owner,
                        scheduled,
                    },
                    WaitTimeoutResult(t.timed_out()),
                )),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((
                        MutexGuard {
                            inner: Some(g),
                            owner,
                            scheduled,
                        },
                        WaitTimeoutResult(t.timed_out()),
                    )))
                }
            }
        }
    }

    /// Wakes one waiter (the scheduled pick is seeded-deterministic).
    pub fn notify_one(&self) {
        self.inner.notify_one();
        sched::notify(self.key(), false);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
        sched::notify(self.key(), true);
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscheduled_paths_delegate_to_std() {
        let m = Mutex::new_labeled("test.m", 1u32);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 2);

        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (g, res) = cv.wait_timeout(g, Duration::from_millis(5)).unwrap();
        assert!(res.timed_out());
        drop(g);
    }

    #[test]
    fn poisoning_propagates_like_std() {
        let m = std::sync::Arc::new(Mutex::new_labeled("test.poison", 0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let v = *m.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(v, 0);
    }
}
