//! The finding/report schema shared by both `dp_check` engines.
//!
//! `dp_lint` (static rules over source text) and the interleaving
//! checker (runtime invariants over scheduled executions) both emit
//! [`Finding`]s and serialize them through the same hand-rolled JSON
//! writer — the workspace has no serde, so the writer follows the
//! `BENCH_*.json` convention: a stable, diffable layout produced by
//! plain string formatting.

use std::fmt::Write as _;

/// One problem found by a rule or a scheduled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `relaxed-justified`, `deadlock`).
    pub rule: String,
    /// Repo-relative file the finding anchors to, or a pseudo-path like
    /// `<schedule seed=7>` for runtime findings.
    pub file: String,
    /// 1-based line number; 0 when the finding has no line anchor.
    pub line: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix or suppress it.
    pub hint: String,
}

impl Finding {
    /// Builds a finding; `line` 0 means "whole file / no line anchor".
    pub fn new(
        rule: &str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.into(),
            line,
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Renders as `file:line: [rule] message (hint)` for terminals.
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        );
        if !self.hint.is_empty() {
            let _ = write!(s, " ({})", self.hint);
        }
        s
    }
}

/// A full report: findings plus scan bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Which engine produced this (`dp_lint` or `dp_check-sched`).
    pub tool: String,
    /// Everything unsuppressed the engine found.
    pub findings: Vec<Finding>,
    /// Files (or schedules) examined.
    pub scanned: usize,
    /// Sites whose annotation/allowlist suppressed a would-be finding.
    pub suppressed: usize,
}

impl Report {
    /// A fresh, empty report for `tool`.
    pub fn new(tool: &str) -> Self {
        Report {
            tool: tool.to_string(),
            ..Report::default()
        }
    }

    /// True when nothing unsuppressed was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"tool\": \"{}\",", escape(&self.tool));
        let _ = writeln!(s, "  \"scanned\": {},", self.scanned);
        let _ = writeln!(s, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(s, "  \"finding_count\": {},", self.findings.len());
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(s, "\"rule\": \"{}\", ", escape(&f.rule));
            let _ = write!(s, "\"file\": \"{}\", ", escape(&f.file));
            let _ = write!(s, "\"line\": {}, ", f.line);
            let _ = write!(s, "\"message\": \"{}\", ", escape(&f.message));
            let _ = write!(s, "\"hint\": \"{}\"", escape(&f.hint));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::new("dp_lint");
        r.scanned = 2;
        r.findings.push(Finding::new(
            "demo",
            "a \"b\".rs",
            3,
            "line1\nline2",
            "tab\there",
        ));
        let j = r.to_json();
        assert!(j.contains("\"finding_count\": 1,"));
        assert!(j.contains(r#""file": "a \"b\".rs""#));
        assert!(j.contains(r#"line1\nline2"#));
        assert!(j.contains(r#"tab\there"#));
    }

    #[test]
    fn empty_report_is_clean_and_valid() {
        let r = Report::new("dp_lint");
        assert!(r.is_clean());
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
    }
}
