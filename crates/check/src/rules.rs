//! The `dp_lint` rule engine: token-level source rules over the
//! workspace, built on [`crate::lexer`].
//!
//! Every rule is suppressible at the site it fires (suppression marker
//! in a comment on the same line or the comment block directly above),
//! or via the built-in [`ALLOWLIST`]. The rule table is the single
//! source of truth for the README section (`dp_lint --rules-doc`
//! renders it; CI diffs the two).

use crate::lexer::{lex, squash, LexedFile};
use crate::report::{Finding, Report};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier used in findings and suppressions.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// How to suppress one site (`—` when not site-suppressible).
    pub suppression: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Crates whose concurrency code is in scope for the atomic-ordering
/// and panic-hygiene rules (the serving stack plus this crate).
pub const CONCURRENCY_CRATES: &[&str] = &[
    "crates/serve",
    "crates/gateway",
    "crates/net",
    "crates/fault",
    "crates/check",
];

/// Crates whose serving paths must read time through the
/// `dp_trace::Clock` seam rather than `Instant::now()` directly —
/// otherwise manual-clock tests and deterministic replays silently see
/// a different timeline than production.
pub const CLOCK_SEAM_CRATES: &[&str] = &["crates/serve", "crates/gateway", "crates/net"];

/// All implemented rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "relaxed-justified",
        scope: "serve, gateway, net, fault, check (src + tests)",
        suppression: "`// relaxed-ok: <reason>`",
        summary: "Every `Ordering::Relaxed` site must justify why relaxed ordering is sufficient.",
    },
    Rule {
        id: "seqcst-justified",
        scope: "serve, gateway, net, fault, check (src + tests)",
        suppression: "`// seqcst-ok: <reason>`",
        summary: "Every `Ordering::SeqCst` site must justify the full fence (over-synchronization candidate).",
    },
    Rule {
        id: "no-unchecked-panic",
        scope: "serve, gateway, net, fault, check (non-test code)",
        suppression: "`// panic-ok: <reason>`",
        summary: "No `unwrap()` / `expect()` / `panic!` on serving paths outside annotated sites.",
    },
    Rule {
        id: "no-unbounded-channel",
        scope: "whole workspace",
        suppression: "`// channel-ok: <reason>`",
        summary: "No unbounded `std::sync::mpsc::channel()`; every queue in the system is bounded.",
    },
    Rule {
        id: "forbid-unsafe",
        scope: "every workspace member",
        suppression: "—",
        summary: "Every crate forbids `unsafe_code`, via `#![forbid(unsafe_code)]` or the `[workspace.lints]` opt-in.",
    },
    Rule {
        id: "wire-decode-deterministic",
        scope: "crates/net/src/wire.rs",
        suppression: "`// time-ok: <reason>`",
        summary: "No `Instant::now()` / `SystemTime::now()` in wire decode paths (decode stays deterministic).",
    },
    Rule {
        id: "clock-via-seam",
        scope: "serve, gateway, net (non-test code; `wire.rs` has its own stricter rule)",
        suppression: "`// clock-ok: <reason>`",
        summary: "Raw `Instant::now()` / `SystemTime::now()` on serving paths must go through the `dp_trace::Clock` seam.",
    },
    Rule {
        id: "prom-drift",
        scope: "crates/gateway/src/metrics.rs vs gateway_metrics.prom",
        suppression: "—",
        summary: "Prometheus row names in the source must match the committed `gateway_metrics.prom` artifact.",
    },
];

/// Built-in allowlist: `(rule id, path suffix, reason)`. Kept empty on
/// purpose — every real site carries its own in-source justification —
/// but the mechanism exists so a future exception is an explicit,
/// reviewed entry instead of a weakened rule.
pub const ALLOWLIST: &[(&str, &str, &str)] = &[];

/// Renders the rule table as the markdown block embedded in the README
/// (`dp_lint --rules-doc`; CI diffs it against the README section).
pub fn rules_doc() -> String {
    let mut s = String::new();
    s.push_str("| rule | scope | suppression | summary |\n");
    s.push_str("|------|-------|-------------|---------|\n");
    for r in RULES {
        let _ = writeln!(
            s,
            "| `{}` | {} | {} | {} |",
            r.id, r.scope, r.suppression, r.summary
        );
    }
    s
}

/// Runs every rule over the workspace rooted at `root`; returns the
/// combined report.
pub fn run(root: &Path) -> Report {
    let mut report = Report::new("dp_lint");
    let members = workspace_members(root);
    let forbids = workspace_forbids_unsafe(root);
    for member in &members {
        let crate_dir = root.join(member);
        check_forbid_unsafe(root, member, forbids, &mut report);
        for file in rs_files(&crate_dir) {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(src) = fs::read_to_string(&file) else {
                continue;
            };
            report.scanned += 1;
            let lexed = lex(&src);
            check_file(member, &rel, &lexed, &mut report);
        }
    }
    check_prom_drift(root, &mut report);
    report
}

/// Applies the per-line rules to one lexed file.
fn check_file(member: &str, rel: &str, lexed: &LexedFile, report: &mut Report) {
    let concurrency = CONCURRENCY_CRATES.contains(&member);
    let in_test_file = rel.contains("/tests/") || rel.contains("/benches/");
    let mask = lexed.test_mask();
    let is_wire = rel.ends_with("crates/net/src/wire.rs") || rel == "crates/net/src/wire.rs";

    for (idx, line) in lexed.lines.iter().enumerate() {
        let sq = squash(&line.code);
        let lineno = idx + 1;
        let test_code = in_test_file || mask.get(idx).copied().unwrap_or(false);

        if concurrency && sq.contains("Ordering::Relaxed") {
            site(
                report, lexed, idx, "relaxed-justified", rel, lineno, "relaxed-ok:",
                "`Ordering::Relaxed` without a `relaxed-ok:` justification",
                "state why relaxed suffices (e.g. monotone counter; reader syncs via a lock) in a `// relaxed-ok: …` comment on or above the line",
            );
        }
        if concurrency && sq.contains("Ordering::SeqCst") {
            site(
                report, lexed, idx, "seqcst-justified", rel, lineno, "seqcst-ok:",
                "`Ordering::SeqCst` without a `seqcst-ok:` justification",
                "state why the full fence is needed (or weaken the ordering) in a `// seqcst-ok: …` comment on or above the line",
            );
        }
        if concurrency && !test_code {
            for pat in [".unwrap()", ".expect(", "panic!("] {
                if sq.contains(pat) {
                    site(
                        report, lexed, idx, "no-unchecked-panic", rel, lineno, "panic-ok:",
                        &format!("`{pat}` on a serving-crate path without a `panic-ok:` justification"),
                        "return a typed error, or justify the invariant in a `// panic-ok: …` comment on or above the line",
                    );
                    break; // one finding per line
                }
            }
        }
        if sq.contains("mpsc::channel(") {
            site(
                report,
                lexed,
                idx,
                "no-unbounded-channel",
                rel,
                lineno,
                "channel-ok:",
                "unbounded `mpsc::channel()`",
                "use `mpsc::sync_channel(bound)` so backpressure propagates",
            );
        }
        if is_wire
            && !test_code
            && (sq.contains("Instant::now(") || sq.contains("SystemTime::now("))
        {
            site(
                report,
                lexed,
                idx,
                "wire-decode-deterministic",
                rel,
                lineno,
                "time-ok:",
                "clock read inside `dp_net::wire`",
                "keep frame encode/decode pure; resolve deadlines at admission in the server layer",
            );
        }
        if CLOCK_SEAM_CRATES.contains(&member)
            && !is_wire // wire.rs answers to the stricter wire-decode-deterministic rule
            && !test_code
            && (sq.contains("Instant::now(") || sq.contains("SystemTime::now("))
        {
            site(
                report, lexed, idx, "clock-via-seam", rel, lineno, "clock-ok:",
                "raw clock read on a serving path without a `clock-ok:` justification",
                "read time through the `dp_trace::Clock` seam (thread a clock handle in), or justify the wall-clock read in a `// clock-ok: …` comment on or above the line",
            );
        }
    }
}

/// Records a finding for one matched site unless a suppression marker
/// or allowlist entry covers it.
#[allow(clippy::too_many_arguments)]
fn site(
    report: &mut Report,
    lexed: &LexedFile,
    idx: usize,
    rule: &str,
    rel: &str,
    lineno: usize,
    marker: &str,
    message: &str,
    hint: &str,
) {
    if has_marker(lexed, idx, marker) || allowlisted(rule, rel) {
        report.suppressed += 1;
    } else {
        report
            .findings
            .push(Finding::new(rule, rel, lineno, message, hint));
    }
}

/// True when `marker` (with a non-empty reason after it) appears in the
/// comment on line `idx` or in the contiguous comment block above it.
fn has_marker(lexed: &LexedFile, idx: usize, marker: &str) -> bool {
    if comment_has(&lexed.lines[idx].comment, marker) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lexed.lines[i];
        if l.code.trim().is_empty() && !l.comment.trim().is_empty() {
            if comment_has(&l.comment, marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// `marker` followed by a non-empty reason.
fn comment_has(comment: &str, marker: &str) -> bool {
    comment
        .find(marker)
        .is_some_and(|p| !comment[p + marker.len()..].trim().is_empty())
}

/// True when the built-in allowlist covers (rule, file).
fn allowlisted(rule: &str, rel: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(r, suffix, _)| *r == rule && rel.ends_with(suffix))
}

/// Parses the workspace member list from the root `Cargo.toml`.
pub fn workspace_members(root: &Path) -> Vec<String> {
    let Ok(toml) = fs::read_to_string(root.join("Cargo.toml")) else {
        return Vec::new();
    };
    let mut members = Vec::new();
    let mut in_members = false;
    for line in toml.lines() {
        let t = line.trim();
        if t.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in t.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if t.ends_with(']') {
                break;
            }
        }
    }
    members
}

/// True when the root `[workspace.lints.rust]` table forbids unsafe.
fn workspace_forbids_unsafe(root: &Path) -> bool {
    let Ok(toml) = fs::read_to_string(root.join("Cargo.toml")) else {
        return false;
    };
    let mut in_table = false;
    for line in toml.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_table = t == "[workspace.lints.rust]";
        } else if in_table && squash(t).starts_with("unsafe_code=\"forbid\"") {
            return true;
        }
    }
    false
}

/// The forbid-unsafe rule: the crate root carries the attribute, or the
/// crate opts into the workspace lints table (which forbids it).
fn check_forbid_unsafe(root: &Path, member: &str, workspace_forbids: bool, report: &mut Report) {
    let crate_dir = root.join(member);
    let lib = crate_dir.join("src/lib.rs");
    let main = crate_dir.join("src/main.rs");
    let crate_root = if lib.exists() { lib } else { main };
    let attr_present = fs::read_to_string(&crate_root)
        .map(|s| {
            lex(&s)
                .lines
                .iter()
                .any(|l| squash(&l.code).contains("#![forbid(unsafe_code)]"))
        })
        .unwrap_or(false);
    let opted_in = workspace_forbids
        && fs::read_to_string(crate_dir.join("Cargo.toml"))
            .map(|t| {
                let mut in_lints = false;
                for line in t.lines() {
                    let tr = line.trim();
                    if tr.starts_with('[') {
                        in_lints = tr == "[lints]";
                    } else if in_lints && squash(tr) == "workspace=true" {
                        return true;
                    }
                }
                false
            })
            .unwrap_or(false);
    if !attr_present && !opted_in {
        report.findings.push(Finding::new(
            "forbid-unsafe",
            format!("{member}/src/lib.rs"),
            1,
            "crate neither carries `#![forbid(unsafe_code)]` nor opts into `[workspace.lints]`",
            "add `[lints] workspace = true` to the crate's Cargo.toml",
        ));
    } else {
        report.suppressed += 1;
    }
}

/// The prom-drift rule: full `dp_gateway_*` metric names appearing in
/// string literals of the gateway metrics source (non-test lines) must
/// exactly match the `# TYPE` rows of the committed artifact.
fn check_prom_drift(root: &Path, report: &mut Report) {
    let src_path = root.join("crates/gateway/src/metrics.rs");
    let prom_path = root.join("results/smoke/gateway_metrics.prom");
    let (Ok(src), Ok(prom)) = (
        fs::read_to_string(&src_path),
        fs::read_to_string(&prom_path),
    ) else {
        return; // nothing to diff outside a full checkout
    };
    let lexed = lex(&src);
    let mask = lexed.test_mask();
    let mut in_source: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for s in &line.strings {
            for name in extract_metric_names(s, "dp_gateway_") {
                in_source.insert(name);
            }
        }
    }
    let in_artifact: BTreeSet<String> = prom
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect();
    for name in in_source.difference(&in_artifact) {
        report.findings.push(Finding::new(
            "prom-drift",
            "gateway_metrics.prom",
            0,
            format!("source emits `{name}` but the committed artifact has no `# TYPE {name}` row"),
            "regenerate the artifact (bench-smoke writes results/smoke/gateway_metrics.prom) and commit it",
        ));
    }
    for name in in_artifact.difference(&in_source) {
        report.findings.push(Finding::new(
            "prom-drift",
            "crates/gateway/src/metrics.rs",
            0,
            format!(
                "committed artifact declares `# TYPE {name}` but the source no longer names it"
            ),
            "remove the stale row from gateway_metrics.prom or restore it in `PROM_TYPE_ROWS`",
        ));
    }
    if in_source == in_artifact && !in_source.is_empty() {
        report.suppressed += 1;
    }
}

/// Extracts maximal `prefix[a-z0-9_]*` names from a literal, dropping
/// trailing underscores and bare-prefix matches (format templates like
/// `dp_gateway_{name}_total` must not count as names).
fn extract_metric_names(literal: &str, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = literal.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = literal[start..].find(prefix) {
        let begin = start + pos;
        let mut end = begin + prefix.len();
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let mut name = &literal[begin..end];
        while let Some(stripped) = name.strip_suffix('_') {
            name = stripped;
        }
        if name.len() > prefix.len() {
            out.push(name.to_string());
        }
        start = end.max(begin + prefix.len());
    }
    out
}

/// Recursively collects `.rs` files under `dir` (skips `target/`).
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        let mut batch: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        batch.sort();
        for path in batch {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings_for(member: &str, rel: &str, src: &str) -> Report {
        let mut report = Report::new("dp_lint");
        check_file(member, rel, &lex(src), &mut report);
        report
    }

    #[test]
    fn unjustified_relaxed_is_a_finding_and_marker_suppresses() {
        let bad = "x.load(Ordering::Relaxed);\n";
        let r = findings_for("crates/gateway", "crates/gateway/src/x.rs", bad);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "relaxed-justified");
        assert_eq!(r.findings[0].line, 1);

        let ok = "x.load(Ordering::Relaxed); // relaxed-ok: monotone counter\n";
        let r = findings_for("crates/gateway", "crates/gateway/src/x.rs", ok);
        assert!(r.is_clean());
        assert_eq!(r.suppressed, 1);

        let above = "// relaxed-ok: monotone counter\nx.load(Ordering::Relaxed);\n";
        assert!(findings_for("crates/gateway", "crates/gateway/src/x.rs", above).is_clean());
    }

    #[test]
    fn marker_without_reason_does_not_suppress() {
        let src = "x.load(Ordering::Relaxed); // relaxed-ok:\n";
        let r = findings_for("crates/gateway", "crates/gateway/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn seqcst_needs_its_own_marker() {
        let src = "x.store(true, Ordering::SeqCst); // relaxed-ok: wrong marker\n";
        let r = findings_for("crates/serve", "crates/serve/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "seqcst-justified");
    }

    #[test]
    fn out_of_scope_crates_are_not_checked_for_orderings() {
        let src = "x.load(Ordering::Relaxed);\n";
        assert!(findings_for("crates/posit", "crates/posit/src/x.rs", src).is_clean());
    }

    #[test]
    fn panic_rule_skips_test_code_and_strings() {
        let src =
            "let x = opt.unwrap();\n#[cfg(test)]\nmod tests {\n    fn t() { o.unwrap(); }\n}\n";
        let r = findings_for("crates/net", "crates/net/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "no-unchecked-panic");
        assert_eq!(r.findings[0].line, 1);

        let in_string = "let msg = \"don't panic!(…) or .unwrap()\";\n";
        assert!(findings_for("crates/net", "crates/net/src/x.rs", in_string).is_clean());

        let test_file = "fn helper() { o.unwrap(); }\n";
        assert!(findings_for("crates/net", "crates/net/tests/x.rs", test_file).is_clean());
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "let x = o.unwrap_or(1) + o.unwrap_or_else(f) + o.unwrap_or_default();\n";
        assert!(findings_for("crates/net", "crates/net/src/x.rs", src).is_clean());
        let e = "let x = admission.expect_admitted();\n";
        assert!(findings_for("crates/gateway", "crates/gateway/src/x.rs", e).is_clean());
    }

    #[test]
    fn unbounded_channel_flagged_everywhere_bounded_is_fine() {
        let bad = "let (tx, rx) = std::sync::mpsc::channel();\n";
        let r = findings_for("crates/core", "crates/core/src/x.rs", bad);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "no-unbounded-channel");
        let good = "let (tx, rx) = std::sync::mpsc::sync_channel(8);\n";
        assert!(findings_for("crates/core", "crates/core/src/x.rs", good).is_clean());
    }

    #[test]
    fn wire_clock_reads_flagged_only_in_wire() {
        let src = "let t = Instant::now();\n";
        let r = findings_for("crates/net", "crates/net/src/wire.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "wire-decode-deterministic");
        // Outside wire.rs the read is clock-via-seam's business instead.
        let r = findings_for("crates/net", "crates/net/src/server.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "clock-via-seam");
    }

    #[test]
    fn clock_reads_on_serving_paths_need_the_seam_or_a_marker() {
        let bad = "let now = Instant::now();\n";
        let r = findings_for("crates/serve", "crates/serve/src/pool.rs", bad);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "clock-via-seam");
        assert_eq!(r.findings[0].line, 1);

        let wall = "let t = SystemTime::now();\n";
        let r = findings_for("crates/net", "crates/net/src/server.rs", wall);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "clock-via-seam");

        let ok = "let now = Instant::now(); // clock-ok: rate limiting is a real-time contract\n";
        let r = findings_for("crates/gateway", "crates/gateway/src/limiter.rs", ok);
        assert!(r.is_clean());
        assert_eq!(r.suppressed, 1);

        let above = "// clock-ok: drain-deadline anchor\nst.closed_at = Some(Instant::now());\n";
        assert!(findings_for("crates/gateway", "crates/gateway/src/ring.rs", above).is_clean());
    }

    #[test]
    fn clock_seam_rule_skips_tests_wire_and_out_of_scope_crates() {
        let src = "let now = Instant::now();\n";
        // Test files and #[cfg(test)] blocks drive manual clocks anyway.
        assert!(findings_for("crates/serve", "crates/serve/tests/x.rs", src).is_clean());
        // wire.rs answers to wire-decode-deterministic, not this rule.
        let r = findings_for("crates/net", "crates/net/src/wire.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "wire-decode-deterministic");
        // The seam itself (dp_trace) and the numeric crates are out of scope.
        assert!(findings_for("crates/trace", "crates/trace/src/clock.rs", src).is_clean());
        assert!(findings_for("crates/bench", "crates/bench/src/x.rs", src).is_clean());
    }

    #[test]
    fn metric_name_extraction_ignores_templates_and_trailing_runs() {
        assert_eq!(
            extract_metric_names("# TYPE dp_gateway_submitted_total counter", "dp_gateway_"),
            vec!["dp_gateway_submitted_total"]
        );
        assert!(
            extract_metric_names("# TYPE dp_gateway_{name}_total counter", "dp_gateway_")
                .is_empty()
        );
        assert_eq!(
            extract_metric_names(
                "dp_gateway_model_requests_total{model=\"{m}\"} {v}",
                "dp_gateway_"
            ),
            vec!["dp_gateway_model_requests_total"]
        );
    }

    #[test]
    fn rules_doc_lists_every_rule() {
        let doc = rules_doc();
        for r in RULES {
            assert!(doc.contains(r.id), "missing {}", r.id);
        }
    }
}
