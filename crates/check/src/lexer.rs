//! A minimal Rust lexer for line-oriented source rules.
//!
//! This is *not* a parser: it separates each source line into three
//! channels — code (with comment text and literal contents blanked to
//! spaces, quotes preserved), comment text, and string-literal
//! contents — which is exactly enough for token-level rules like
//! "`Ordering::Relaxed` must carry a `relaxed-ok:` comment" without
//! false matches inside strings or docs. Zero-dependency by the same
//! philosophy as the `rand`/`proptest` shims.
//!
//! Handled: line and (nested) block comments, plain/byte strings with
//! escapes, raw strings `r#"…"#` with any number of `#`, char literals,
//! and the char-vs-lifetime ambiguity (`'a'` vs `'a`).

/// One source line split into channels.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The line with comments and literal contents blanked to spaces.
    pub code: String,
    /// Comment text on this line (all comments concatenated).
    pub comment: String,
    /// String-literal content segments on this line.
    pub strings: Vec<String>,
}

/// A whole file, line by line.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// Lines in file order (index 0 is line 1).
    pub lines: Vec<LexedLine>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Nested depth.
    Block(u32),
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##`; the payload is the `#` count.
    RawStr(u32),
}

/// Lexes `src` into per-line channels.
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let chars: Vec<char> = src.chars().collect();
    let mut line = LexedLine::default();
    let mut cur_string = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    // Ends the current line, flushing any in-flight string segment.
    macro_rules! newline {
        () => {{
            if matches!(mode, Mode::Str | Mode::RawStr(_)) && !cur_string.is_empty() {
                line.strings.push(std::mem::take(&mut cur_string));
            }
            out.lines.push(std::mem::take(&mut line));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            newline!();
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    line.code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Possible raw/byte string prefix: r"... r#"... b"... br#"...
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1 || hashes == 0) {
                        // Emit the prefix + opening quote as code, enter string.
                        for &p in &chars[i..=j] {
                            line.code.push(p);
                        }
                        mode = if hashes > 0 || chars[if c == 'b' { i + 1 } else { i }] == 'r' {
                            Mode::RawStr(hashes)
                        } else {
                            Mode::Str
                        };
                        i = j + 1;
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: '\x' or '\u{…}' etc.
                        line.code.push('\'');
                        i += 2; // consume ' and backslash
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            line.code.push(' ');
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') {
                        // 'x' one-char literal.
                        line.code.push('\'');
                        line.code.push(' ');
                        line.code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime: keep as code.
                        line.code.push('\'');
                        i += 1;
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    line.code.push_str("  ");
                    i += 2;
                } else {
                    line.comment.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' && next == Some('\n') {
                    // Line continuation: consume only the backslash so the
                    // main loop still sees the newline and line numbers
                    // stay in sync with the source.
                    cur_string.push(c);
                    line.code.push(' ');
                    i += 1;
                } else if c == '\\' && next.is_some() {
                    cur_string.push(c);
                    cur_string.push(next.unwrap_or(' '));
                    line.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    line.strings.push(std::mem::take(&mut cur_string));
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur_string.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    line.strings.push(std::mem::take(&mut cur_string));
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_string.push(c);
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Flush a final line only when the file doesn't end in a newline.
    if !line.code.is_empty()
        || !line.comment.is_empty()
        || !line.strings.is_empty()
        || !cur_string.is_empty()
    {
        newline!();
    }
    out
}

/// True when `chars[i]` is preceded by an identifier character (so an
/// `r`/`b` here is the tail of a name like `for`, not a string prefix).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// True when the `"` at `i` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

impl LexedFile {
    /// Per-line mask of `#[cfg(test)]`-gated regions (brace-matched from
    /// the attribute's item) — used to exempt in-file test modules from
    /// production-code rules. Lines in files under `tests/` should be
    /// masked by the caller instead.
    pub fn test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.lines.len()];
        let mut i = 0usize;
        while i < self.lines.len() {
            let sq = squash(&self.lines[i].code);
            if sq.contains("#[cfg(test)]") || sq.contains("#[cfg(all(test,") {
                // Find the opening brace of the gated item, then match it.
                let mut depth = 0i64;
                let mut opened = false;
                let mut j = i;
                while j < self.lines.len() {
                    mask[j] = true;
                    for c in self.lines[j].code.chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
        mask
    }
}

/// Removes all whitespace, making token-sequence matching trivial.
pub fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let f = lex("let x = \"Ordering::Relaxed\"; // relaxed-ok: reason\n");
        assert!(!f.lines[0].code.contains("Relaxed"));
        assert_eq!(f.lines[0].strings, vec!["Ordering::Relaxed".to_string()]);
        assert!(f.lines[0].comment.contains("relaxed-ok: reason"));
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let f = lex("/* a /* b */ still */ code() /// doc\n");
        assert!(f.lines[0].code.contains("code()"));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[0].comment.contains("b"));
        assert!(f.lines[0].comment.contains("doc"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = lex("let a = r#\"quote \" inside\"#; let b = \"esc\\\"aped\";\n");
        assert_eq!(f.lines[0].strings.len(), 2);
        assert_eq!(f.lines[0].strings[0], "quote \" inside");
        assert_eq!(f.lines[0].strings[1], "esc\\\"aped");
        assert!(!f.lines[0].code.contains("inside"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains("'x'"));
        let g = lex("let c = '\\n'; let l: &'static str = \"s\";\n");
        assert!(g.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn multiline_strings_segment_per_line() {
        let f = lex("let s = \"line one\nline two\";\nOrdering::Relaxed\n");
        assert_eq!(f.lines[0].strings, vec!["line one".to_string()]);
        assert_eq!(f.lines[1].strings, vec!["line two".to_string()]);
        assert!(f.lines[2].code.contains("Ordering::Relaxed"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let f = lex("let s = \"a \\\n    b\";\nOrdering::Relaxed\n");
        assert_eq!(f.lines.len(), 3);
        assert!(f.lines[2].code.contains("Ordering::Relaxed"));
    }

    #[test]
    fn test_mask_covers_gated_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn a() {}\n}\nfn prod2() {}\n";
        let mask = lex(src).test_mask();
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
