//! # dp_check — in-tree static analysis + deterministic concurrency checking
//!
//! The serving stack (ring, handles, limiter, pool, watchdog) is
//! hand-rolled concurrent code with >100 atomic-ordering call sites,
//! and this container has no loom, miri, or TSan. This crate makes the
//! invariants mechanically falsifiable, the same move `dp_fault` made
//! for fault handling — extended from faults to schedules and source
//! invariants. Two engines share one report schema ([`report`]):
//!
//! * **`dp_lint`** (`cargo run -p dp_check --bin dp_lint`) — a
//!   token-level source linter ([`lexer`] + [`rules`]): atomic-ordering
//!   justification sweeps (`relaxed-ok:` / `seqcst-ok:`), panic hygiene
//!   on serving paths, the bounded-everything channel rule, workspace
//!   `forbid(unsafe_code)` coverage, wire-decode determinism, and the
//!   Prometheus row-drift check ported from CI python. Machine-readable
//!   JSON findings; nonzero exit on any unsuppressed finding.
//! * **interleaving checker** ([`sched`] + [`sync`]) — a seeded
//!   PCT-style scheduler that serializes instrumented threads and
//!   explores thousands of interleavings per seed across named yield
//!   points (`check_yield!`), with an instrumented mutex/condvar pair
//!   that records a lock-order graph (cycle ⇒ deadlock finding) and
//!   deterministic virtual timeouts. The serving crates opt in behind
//!   their `check-yield` feature; default builds compile all hooks out.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod sched;
pub mod sync;

pub use report::{Finding, Report};
pub use sched::yield_point;

/// Names a linearization point for the interleaving checker.
///
/// Expands to a call to [`yield_point`]; the serving crates wrap it in
/// their own `check_yield!` that compiles to nothing without their
/// `check-yield` feature, so release builds carry no hook code.
#[macro_export]
macro_rules! check_yield {
    ($point:expr) => {
        $crate::yield_point($point)
    };
}
