//! Workspace lint driver: runs every [`dp_check::rules`] rule and
//! reports findings as text and machine-readable JSON.
//!
//! ```text
//! dp_lint [--root DIR] [--json PATH] [--rules-doc] [--quiet]
//! ```
//!
//! * `--root DIR`    workspace root (default: current directory)
//! * `--json PATH`   also write the JSON report to PATH
//! * `--rules-doc`   print the rule table as markdown and exit (CI
//!   diffs this against the README section)
//! * `--quiet`       suppress per-finding lines (JSON/exit code only)
//!
//! Exit status: 0 when clean, 1 on any unsuppressed finding, 2 on
//! usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut rules_doc = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--rules-doc" => rules_doc = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("dp_lint [--root DIR] [--json PATH] [--rules-doc] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if rules_doc {
        print!("{}", dp_check::rules::rules_doc());
        return ExitCode::SUCCESS;
    }

    if !root.join("Cargo.toml").exists() {
        return usage(&format!(
            "`{}` has no Cargo.toml; pass the workspace root via --root",
            root.display()
        ));
    }

    let report = dp_check::rules::run(&root);
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dp_lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        for f in &report.findings {
            println!("{}", f.to_line());
        }
    }
    eprintln!(
        "dp_lint: {} files scanned, {} sites justified/suppressed, {} finding(s)",
        report.scanned,
        report.suppressed,
        report.findings.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dp_lint: {msg}");
    eprintln!("usage: dp_lint [--root DIR] [--json PATH] [--rules-doc] [--quiet]");
    ExitCode::from(2)
}
