//! Self-tests for the seeded PCT interleaving scheduler: determinism
//! (same seed ⇒ identical trace), schedule-space coverage across seeds,
//! deliberate deadlock / lock-order-inversion detection, virtual
//! timeouts, and JSON serialization of runtime findings — the checker
//! must be falsifiable before the serving crates lean on it.

use dp_check::sched::{explore, run_schedule};
use dp_check::sync::{Condvar, Mutex};
use dp_check::{check_yield, Report};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Three workers hammer one instrumented counter with yield points
/// between the read and the write — the canonical lost-update shape,
/// made safe here by the mutex (the schedule stresses it anyway).
fn counter_bodies(counter: &Arc<Mutex<u64>>) -> Vec<Box<dyn FnOnce() + Send>> {
    (0..3)
        .map(|_| {
            let counter = Arc::clone(counter);
            Box::new(move || {
                for _ in 0..4 {
                    check_yield!("test.before_add");
                    // relaxed-ok style note does not apply: this is an
                    // instrumented mutex, not an atomic.
                    let mut g = counter.lock().unwrap_or_else(|e| e.into_inner());
                    check_yield!("test.in_section");
                    *g += 1;
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect()
}

#[test]
fn same_seed_same_trace() {
    let c1 = Arc::new(Mutex::new_labeled("test.counter", 0u64));
    let r1 = run_schedule(0xDEAD_BEEF, 3, counter_bodies(&c1));
    let c2 = Arc::new(Mutex::new_labeled("test.counter", 0u64));
    let r2 = run_schedule(0xDEAD_BEEF, 3, counter_bodies(&c2));
    assert_eq!(r1.trace, r2.trace, "same seed must replay identically");
    assert_eq!(r1.fingerprint(), r2.fingerprint());
    assert!(r1.findings.is_empty(), "findings: {:?}", r1.findings);
    assert_eq!(*c1.lock().unwrap_or_else(|e| e.into_inner()), 12);
    assert_eq!(*c2.lock().unwrap_or_else(|e| e.into_inner()), 12);
}

#[test]
fn different_seeds_diverge() {
    let c1 = Arc::new(Mutex::new_labeled("test.counter", 0u64));
    let r1 = run_schedule(1, 3, counter_bodies(&c1));
    let c2 = Arc::new(Mutex::new_labeled("test.counter", 0u64));
    let r2 = run_schedule(2, 3, counter_bodies(&c2));
    // Not guaranteed for arbitrary seed pairs in general, but these two
    // diverge and the test pins that the seed actually steers anything.
    assert_ne!(r1.fingerprint(), r2.fingerprint());
}

#[test]
fn explore_covers_a_thousand_schedules_and_conserves() {
    let total = Arc::new(AtomicU64::new(0));
    let out = explore(7, 1000, 3, |_| {
        let counter = Arc::new(Mutex::new_labeled("test.counter", 0u64));
        let mut bodies = counter_bodies(&counter);
        let total = Arc::clone(&total);
        bodies.push(Box::new(move || {
            // Runs last in body order but anywhere in schedule order;
            // the mutex still serializes it against the workers.
            check_yield!("test.audit");
            let g = counter.lock().unwrap_or_else(|e| e.into_inner());
            // relaxed-ok: cross-run test tally, read after explore joins
            // every schedule's threads.
            total.fetch_add(*g, Ordering::Relaxed);
        }));
        bodies
    });
    assert_eq!(out.schedules, 1000);
    assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    assert!(
        out.distinct_traces > 100,
        "PCT should spread over the schedule space, got {} distinct traces",
        out.distinct_traces
    );
    assert!(out.total_steps > 0);
}

#[test]
fn deliberate_deadlock_is_a_finding_not_a_hang() {
    // One thread locks and then waits on a condvar nobody ever
    // notifies (and without a timeout): nothing is runnable.
    let pair = Arc::new((Mutex::new_labeled("test.dead", ()), Condvar::new()));
    let body = {
        let pair = Arc::clone(&pair);
        Box::new(move || {
            let (m, cv) = &*pair;
            let g = m.lock().unwrap_or_else(|e| e.into_inner());
            let _ = cv.wait(g);
            unreachable!("the scheduler must abort this wait");
        }) as Box<dyn FnOnce() + Send>
    };
    let res = run_schedule(42, 0, vec![body]);
    assert!(
        res.findings.iter().any(|f| f.rule == "deadlock"),
        "expected a deadlock finding, got {:?}",
        res.findings
    );
}

#[test]
fn lock_order_inversion_is_a_finding() {
    // A then B, then B then A — on one thread, so the run always
    // completes and the label-level cycle is guaranteed to be recorded.
    let locks = Arc::new((
        Mutex::new_labeled("test.order_a", ()),
        Mutex::new_labeled("test.order_b", ()),
    ));
    let body = {
        let locks = Arc::clone(&locks);
        Box::new(move || {
            let (a, b) = &*locks;
            {
                let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
                let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            }
            {
                let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
                let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let res = run_schedule(9, 0, vec![body]);
    assert!(
        res.findings.iter().any(|f| f.rule == "lock-order-cycle"),
        "expected a lock-order-cycle finding, got {:?}",
        res.findings
    );
}

#[test]
fn two_thread_inversion_deadlocks_or_reports_cycle() {
    // The classic AB/BA deadlock. Depending on the seed the schedule
    // either interleaves into the actual deadlock or serializes past it
    // — either way the checker must say something.
    let mut saw_deadlock = false;
    let mut saw_cycle = false;
    for seed in 0..32u64 {
        let locks = Arc::new((
            Mutex::new_labeled("test.inv_a", ()),
            Mutex::new_labeled("test.inv_b", ()),
        ));
        let l1 = Arc::clone(&locks);
        let l2 = Arc::clone(&locks);
        let res = run_schedule(
            seed,
            2,
            vec![
                Box::new(move || {
                    let (a, b) = &*l1;
                    let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
                    // A handful of decision points while holding A widens
                    // the window a preemption can land in.
                    for _ in 0..4 {
                        check_yield!("test.inv.hold_a");
                    }
                    let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
                }),
                Box::new(move || {
                    let (a, b) = &*l2;
                    let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
                    for _ in 0..4 {
                        check_yield!("test.inv.hold_b");
                    }
                    let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
                }),
            ],
        );
        saw_deadlock |= res.findings.iter().any(|f| f.rule == "deadlock");
        saw_cycle |= res.findings.iter().any(|f| f.rule == "lock-order-cycle");
        assert!(
            res.findings
                .iter()
                .any(|f| f.rule == "deadlock" || f.rule == "lock-order-cycle"),
            "seed {seed}: inversion went unreported: {:?}",
            res.findings
        );
    }
    assert!(saw_deadlock, "32 seeds never interleaved into the deadlock");
    assert!(saw_cycle, "32 seeds never completed a run with both edges");
}

#[test]
fn notify_wakes_a_parked_waiter_without_lost_wakeups() {
    // Regression: `Condvar::wait` used to release the lock (a decision
    // point) *before* registering as a waiter, so a notifier scheduled
    // into that window saw nobody to wake and the wakeup was lost —
    // surfacing as a false `deadlock` finding. The registration now
    // happens before the release, closing the window.
    for seed in 0..64u64 {
        let pair = Arc::new((Mutex::new_labeled("test.handoff", false), Condvar::new()));
        let p1 = Arc::clone(&pair);
        let p2 = Arc::clone(&pair);
        let res = run_schedule(
            seed,
            3,
            vec![
                Box::new(move || {
                    let (m, cv) = &*p1;
                    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                    while !*g {
                        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
                    }
                }),
                Box::new(move || {
                    let (m, cv) = &*p2;
                    check_yield!("test.handoff.pre");
                    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                    *g = true;
                    cv.notify_one();
                }),
            ],
        );
        assert!(res.findings.is_empty(), "seed {seed}: {:?}", res.findings);
    }
}

#[test]
fn virtual_timeout_fires_without_real_waiting() {
    use std::time::{Duration, Instant};
    let timed_out = Arc::new(std::sync::Mutex::new(false));
    let pair = Arc::new((Mutex::new_labeled("test.vt", ()), Condvar::new()));
    let body = {
        let pair = Arc::clone(&pair);
        let timed_out = Arc::clone(&timed_out);
        Box::new(move || {
            let (m, cv) = &*pair;
            let g = m.lock().unwrap_or_else(|e| e.into_inner());
            // An hour of wall clock; the scheduler must fire it as
            // virtual time the moment nothing else can run.
            let (_g, res) = cv
                .wait_timeout(g, Duration::from_secs(3600))
                .unwrap_or_else(|e| e.into_inner());
            *timed_out.lock().unwrap() = res.timed_out();
        }) as Box<dyn FnOnce() + Send>
    };
    let t0 = Instant::now();
    let res = run_schedule(5, 0, vec![body]);
    assert!(t0.elapsed() < Duration::from_secs(60), "timeout was real");
    assert!(res.findings.is_empty(), "findings: {:?}", res.findings);
    assert!(*timed_out.lock().unwrap(), "wait must report the timeout");
    assert!(
        res.trace.iter().any(|(_, p)| p == "virtual-timeout"),
        "trace must show the virtual timeout: {:?}",
        res.trace
    );
}

#[test]
fn runtime_findings_serialize_through_the_shared_schema() {
    let pair = Arc::new((Mutex::new_labeled("test.json_dead", ()), Condvar::new()));
    let body = {
        let pair = Arc::clone(&pair);
        Box::new(move || {
            let (m, cv) = &*pair;
            let g = m.lock().unwrap_or_else(|e| e.into_inner());
            let _ = cv.wait(g);
        }) as Box<dyn FnOnce() + Send>
    };
    let res = run_schedule(11, 0, vec![body]);
    let mut report = Report::new("dp_check-sched");
    report.scanned = 1;
    report.findings = res.findings;
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"dp_check-sched\""));
    assert!(json.contains("\"rule\": \"deadlock\""));
    assert!(json.contains("<schedule seed=11>"));
}
