//! # dp-gateway — async admission in front of the Deep Positron serving engine
//!
//! `dp_serve` gave the repo a persistent worker pool, but its admission
//! was the missing front half: `submit_*` pushed straight into an
//! **unbounded** injector queue, so a traffic burst grew memory without
//! limit and gave callers no say in what gives under overload. This crate
//! is that front half — the piece both Deep Positron papers implicitly
//! assume when they pitch low-precision EMACs for *deployment*: a serving
//! layer that stays responsive when more traffic arrives than the
//! hardware can absorb.
//!
//! ```text
//! clients ──try_submit──▶ [bounded ring] ──dispatcher──▶ [engine] ──▶ workers
//! ```
//!
//! * [`gateway`] — the [`Gateway`] and [`GatewayBuilder`]: non-blocking
//!   `try_submit_*` with a typed [`Admission`] verdict
//!   (`Admitted | QueueFull | ModelUnknown | RateLimited | …`), a bounded
//!   multi-producer submission ring, and a dispatcher thread that
//!   forwards to [`dp_serve::ServeEngine::try_dispatch`] while keeping
//!   the engine's internal queue under `max_inflight_chunks`.
//! * [`gateway::OverloadPolicy`] — who pays for a burst: `Block`
//!   (backpressure the producer), `ShedNewest` (reject the newcomer) or
//!   `ShedOldest` (evict the stalest queued request; its handle resolves
//!   to [`GatewayError::Shed`] instead of hanging).
//! * [`limiter`] — per-model token buckets: one token per **sample**,
//!   shared across every format variant of a logical model.
//! * [`metrics`] — lock-free counters and log₂ histograms
//!   ([`GatewayMetrics`]) with a plain-data [`MetricsSnapshot`] and a
//!   hand-rolled JSON renderer.
//! * [`handle`] — [`GatewayHandle`]: poll/wait/`wait_timeout` with cached
//!   first-wins resolution (double-`wait` is defined), plus cooperative
//!   [`cancel`](GatewayHandle::cancel), covering the request's whole
//!   lifecycle including the shed, expired and cancelled paths.
//!
//! Robustness (this crate + `dp_serve` supervision, see the repo README's
//! "Robustness & fault injection" section):
//!
//! * **Deadlines** — [`gateway::SubmitOptions`] carries a per-request
//!   deadline; the dispatcher lazily expires dead entries
//!   ([`GatewayError::DeadlineExceeded`], tokens refunded) instead of
//!   feeding them to a saturated engine.
//! * **Supervision** — [`GatewayBuilder::watchdog`] respawns wedged
//!   workers (only the stuck request fails);
//!   [`GatewayBuilder::panic_budget`] flips the gateway into a degraded
//!   read-only-metrics mode ([`Admission::Degraded`]) after too many
//!   worker panics.
//! * **Bounded shutdown** — [`GatewayBuilder::drain_deadline`] caps how
//!   long `Drop` drains the backlog; past it, remaining requests resolve
//!   [`GatewayError::Closed`] (`drain_aborted` metric) rather than
//!   hanging the process.
//! * **Fault injection** — building with `--features fault-inject`
//!   compiles the `dp_fault` failure points into the dispatcher and
//!   engine for deterministic chaos testing; without the feature the
//!   hooks are inlined `false`s with zero overhead.
//!
//! Admitted traffic stays **bit-identical** to per-sample
//! [`QuantizedMlp::forward_bits`](deep_positron::QuantizedMlp::forward_bits)
//! — the gateway reuses the engine's chunked EMAC-reuse datapath.
//!
//! ```no_run
//! use deep_positron::{NumericFormat, QuantizedMlp};
//! use dp_gateway::{Admission, Gateway, OverloadPolicy, RateLimit};
//!
//! # fn trained() -> deep_positron::Mlp { unimplemented!() }
//! # fn format() -> NumericFormat { unimplemented!() }
//! let gw = Gateway::builder()
//!     .queue_capacity(256)
//!     .policy(OverloadPolicy::ShedOldest)
//!     .rate_limit("iris", RateLimit::per_sec(50_000.0))
//!     .build();
//! let key = gw
//!     .registry()
//!     .register("iris", QuantizedMlp::quantize(&trained(), format()))?;
//! match gw.try_submit_forward(&key, vec![vec![0.1, 0.2, 0.3, 0.4]]) {
//!     Admission::Admitted(handle) => {
//!         let bits = handle.wait()?;
//!         # let _ = bits;
//!     }
//!     Admission::QueueFull => { /* shed: back off or drop */ }
//!     other => eprintln!("rejected: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod check;
mod faults;
pub mod gateway;
pub mod handle;
pub mod limiter;
pub mod metrics;
mod ring;

pub use gateway::{Admission, Gateway, GatewayBuilder, OverloadPolicy, SubmitOptions};
pub use handle::{GatewayError, GatewayHandle, RequestStage};
pub use limiter::RateLimit;
pub use metrics::{GatewayMetrics, HistogramSnapshot, MetricsSnapshot, ModelSnapshot};
// Flight-recorder surface, re-exported so front ends configure tracing
// through the gateway without a direct dp_trace dependency.
pub use dp_trace::{
    Clock, DepthSummary, Recorder, RecorderStats, TerminalKind, Timeline, TraceConfig,
};
