//! Live serving metrics: lock-free counters and histograms updated on the
//! admission and completion hot paths, snapshotted on demand.
//!
//! Every counter is a plain [`AtomicU64`] and every histogram a fixed
//! array of atomic log₂-bucket counts, so recording never takes a lock or
//! allocates — safe to call from pool workers mid-request. The only
//! non-atomic structure is the per-model table, which takes a read lock on
//! the hot path (a write lock only the first time a model is seen).
//!
//! [`MetricsSnapshot`] is a plain-data copy of everything, and
//! [`MetricsSnapshot::to_json`] renders it with the same hand-rolled JSON
//! style as the bench baselines (serde is outside the offline dependency
//! allow-list).

use dp_serve::ModelKey;
use dp_trace::DepthSummary;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log₂ buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` ns, so 40 buckets span 1 ns to ~18 minutes.
const BUCKETS: usize = 40;

/// A lock-free log₂ histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of every recorded duration, for the exposition's `_sum` series.
    sum_ns: AtomicU64,
}

// Derived `Default` needs `[T; N]: Default`, which std only provides for
// N ≤ 32.
impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration (clamped into the bucket range). Lock-free.
    pub fn record_ns(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        // relaxed-ok: independent monotone counters; observers tolerate
        // torn cross-bucket reads (quantiles are already ±2× by design).
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: monotone sum; same tolerance as the buckets.
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copies the bucket counts out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                // relaxed-ok: no ordering makes a multi-word copy atomic;
                // each bucket is individually monotone, which is all the
                // quantile math needs.
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            // relaxed-ok: monotone sum; may lag the buckets by in-flight
            // records, which snapshot consumers tolerate.
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log₂ bucket; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub counts: Vec<u64>,
    /// Sum of every recorded duration in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Approximate quantile (`0.0 ≤ q ≤ 1.0`) in nanoseconds: the upper
    /// bound of the bucket containing the q-th sample, `0` when empty.
    /// Bucket resolution means the answer is within 2× of the true value.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }
}

/// Per-model counters, created lazily on a model's first admission.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Requests admitted into the ring for this model.
    pub admitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests whose serving job failed (a chunk panicked).
    pub failed: AtomicU64,
    /// Requests shed for this model (rejected at full ring or evicted).
    pub shed: AtomicU64,
    /// Requests whose deadline passed before dispatch (expired in the
    /// ring; rate-limit tokens were refunded).
    pub expired: AtomicU64,
    /// Samples served to completion.
    pub samples: AtomicU64,
    /// Total service time (dispatch → last chunk done) across
    /// **completed** requests, nanoseconds — `service_ns / completed` is
    /// the per-model mean.
    pub service_ns: AtomicU64,
}

/// The gateway's live counters. All hot-path updates are atomic; see the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Every `submit`/`try_submit` call, whatever its verdict.
    pub submitted: AtomicU64,
    /// Requests that entered the submission ring (or resolved inline,
    /// e.g. empty batches).
    pub admitted: AtomicU64,
    /// Requests rejected because the ring was full (`ShedNewest`, or
    /// `Block` on the non-blocking path).
    pub shed_queue_full: AtomicU64,
    /// Admitted requests later evicted by `ShedOldest` to make room.
    pub shed_evicted: AtomicU64,
    /// Requests rejected by a per-model token bucket.
    pub rate_limited: AtomicU64,
    /// Requests naming an unregistered model.
    pub model_unknown: AtomicU64,
    /// Requests whose operation is undefined for the model's format.
    pub unsupported: AtomicU64,
    /// Requests rejected because the gateway was closing.
    pub rejected_closed: AtomicU64,
    /// Requests rejected because the serving engine is degraded (worker
    /// panic budget tripped): admission-time rejections plus admitted
    /// requests dropped at dispatch.
    pub rejected_degraded: AtomicU64,
    /// Requests handed to the serving engine by the dispatcher.
    pub dispatched: AtomicU64,
    /// Admitted requests that were still queued when the gateway closed
    /// the engine underneath them (dispatch failed with `EngineClosed`),
    /// plus requests dropped when the shutdown drain deadline fired.
    pub dropped_closed: AtomicU64,
    /// Admitted requests whose deadline passed before the dispatcher
    /// could hand them to the engine (lazily expired; tokens refunded).
    pub deadline_exceeded: AtomicU64,
    /// Requests cancelled via their handle (while queued, or mid-flight
    /// at a chunk/sample boundary).
    pub cancelled: AtomicU64,
    /// Requests force-resolved `Closed` because the dispatcher's bounded
    /// shutdown drain hit its deadline (each such request also counts in
    /// `dropped_closed`).
    pub drain_aborted: AtomicU64,
    /// Requests whose every chunk finished successfully.
    pub completed: AtomicU64,
    /// Requests with at least one failed chunk.
    pub failed: AtomicU64,
    /// Samples served to completion.
    pub samples_completed: AtomicU64,
    /// High-water mark of the ring backlog.
    pub queue_depth_peak: AtomicU64,
    /// Ring-residency time per request (admission → dispatch).
    pub queue_wait: Histogram,
    /// Service time per **completed** request (dispatch → last chunk
    /// done); failed requests count in `failed`, not here.
    pub service: Histogram,
    per_model: RwLock<HashMap<String, Arc<ModelMetrics>>>,
}

/// Bumps a metrics counter by one.
pub(crate) fn bump(counter: &AtomicU64) {
    // relaxed-ok: independent monotone counter; nothing orders against it
    // and `snapshot` explicitly tolerates cross-counter skew.
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds `v` to a metrics counter.
pub(crate) fn bump_by(counter: &AtomicU64, v: u64) {
    // relaxed-ok: see `bump`.
    counter.fetch_add(v, Ordering::Relaxed);
}

impl GatewayMetrics {
    /// The per-model counters for `key`, created on first use.
    pub fn model(&self, key: &ModelKey) -> Arc<ModelMetrics> {
        let name = key.to_string();
        // panic-ok: per-model table holders never panic while writing
        // (insertion of a Default cannot unwind), so poisoning here means
        // the process is already lost.
        if let Some(m) = self.per_model.read().expect("metrics lock").get(&name) {
            return Arc::clone(m);
        }
        Arc::clone(
            self.per_model
                .write()
                .expect("metrics lock") // panic-ok: same invariant as the read path above
                .entry(name)
                .or_default(),
        )
    }

    /// Drops the per-model counter row for `key`, if any; returns whether
    /// a row existed. Called by `Gateway::unregister` so a churny
    /// register/unregister workload doesn't grow the per-model map (and
    /// every later `/metrics` exposition) one leaked row per retired
    /// model. Outstanding `Arc<ModelMetrics>` clones held by in-flight
    /// requests stay valid — they just stop being visible to snapshots.
    pub fn prune_model(&self, key: &ModelKey) -> bool {
        self.per_model
            .write()
            .expect("metrics lock") // panic-ok: see `model()` — writers cannot unwind mid-write
            .remove(&key.to_string())
            .is_some()
    }

    /// Records a ring-depth observation, maintaining the high-water mark.
    pub(crate) fn note_depth(&self, depth: u64) {
        // relaxed-ok: fetch_max keeps the peak monotone on its own; no
        // other memory is published through this counter.
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Copies every counter and histogram into a [`MetricsSnapshot`].
    /// `queue_depth` is supplied by the caller (the gateway reads its
    /// ring), since the ring is not owned by the metrics.
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        // relaxed-ok: (audited) every counter below is an independent
        // monotone u64; writers bump several counters per request without
        // any enclosing atomicity, so no load ordering could make the
        // snapshot transactionally consistent — stronger orderings would
        // only add fences without tightening any observable guarantee.
        // Cross-counter invariants (admitted ≥ dispatched, …) hold only
        // at quiescence, which is what the tests assert.
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut per_model: Vec<ModelSnapshot> = self
            .per_model
            .read()
            .expect("metrics lock") // panic-ok: see `model()` — writers cannot unwind mid-write
            .iter()
            .map(|(key, m)| ModelSnapshot {
                key: key.clone(),
                admitted: ld(&m.admitted),
                completed: ld(&m.completed),
                failed: ld(&m.failed),
                shed: ld(&m.shed),
                expired: ld(&m.expired),
                samples: ld(&m.samples),
                service_ns: ld(&m.service_ns),
            })
            .collect();
        per_model.sort_by(|a, b| a.key.cmp(&b.key));
        MetricsSnapshot {
            submitted: ld(&self.submitted),
            admitted: ld(&self.admitted),
            shed_queue_full: ld(&self.shed_queue_full),
            shed_evicted: ld(&self.shed_evicted),
            rate_limited: ld(&self.rate_limited),
            model_unknown: ld(&self.model_unknown),
            unsupported: ld(&self.unsupported),
            rejected_closed: ld(&self.rejected_closed),
            rejected_degraded: ld(&self.rejected_degraded),
            dispatched: ld(&self.dispatched),
            dropped_closed: ld(&self.dropped_closed),
            deadline_exceeded: ld(&self.deadline_exceeded),
            cancelled: ld(&self.cancelled),
            drain_aborted: ld(&self.drain_aborted),
            completed: ld(&self.completed),
            failed: ld(&self.failed),
            samples_completed: ld(&self.samples_completed),
            // Engine- and recorder-sourced fields: zero/`None` here,
            // post-filled by `Gateway::snapshot` from the pool's
            // supervision stats and the flight recorder's reservoir.
            worker_stalled: 0,
            workers_respawned: 0,
            degraded: false,
            queue_depth_reservoir: None,
            queue_depth,
            queue_depth_peak: ld(&self.queue_depth_peak),
            queue_wait: self.queue_wait.snapshot(),
            service: self.service.snapshot(),
            per_model,
        }
    }
}

/// Per-model rows of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSnapshot {
    /// The model key's display form (`name@format`).
    pub key: String,
    /// See [`ModelMetrics`] for field meanings.
    pub admitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests whose serving job failed.
    pub failed: u64,
    /// Requests shed (full-ring rejection or eviction).
    pub shed: u64,
    /// Requests whose deadline passed before dispatch.
    pub expired: u64,
    /// Samples served to completion.
    pub samples: u64,
    /// Total service nanoseconds across completed requests.
    pub service_ns: u64,
}

/// Plain-data copy of every gateway counter, histogram and per-model row.
/// Field meanings match [`GatewayMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub admitted: u64,
    pub shed_queue_full: u64,
    pub shed_evicted: u64,
    pub rate_limited: u64,
    pub model_unknown: u64,
    pub unsupported: u64,
    pub rejected_closed: u64,
    pub rejected_degraded: u64,
    pub dispatched: u64,
    pub dropped_closed: u64,
    pub deadline_exceeded: u64,
    pub cancelled: u64,
    pub drain_aborted: u64,
    pub completed: u64,
    pub failed: u64,
    pub samples_completed: u64,
    /// Workers the watchdog declared stalled (engine-sourced; filled by
    /// `Gateway::snapshot`, zero in a bare `GatewayMetrics::snapshot`).
    pub worker_stalled: u64,
    /// Workers respawned by the watchdog (engine-sourced).
    pub workers_respawned: u64,
    /// Whether the engine is currently degraded (engine-sourced).
    pub degraded: bool,
    /// Ring backlog at snapshot time.
    pub queue_depth: usize,
    pub queue_depth_peak: u64,
    /// Recent queue-depth reservoir summary (trace-recorder-sourced:
    /// filled by `Gateway::snapshot` from
    /// `dp_trace::Recorder::queue_depth_summary`; `None` in a bare
    /// `GatewayMetrics::snapshot`, when tracing is off, or before the
    /// first enqueue).
    pub queue_depth_reservoir: Option<DepthSummary>,
    pub queue_wait: HistogramSnapshot,
    pub service: HistogramSnapshot,
    pub per_model: Vec<ModelSnapshot>,
}

/// Every metric family the Prometheus exposition emits, as full literal
/// `(name, kind)` rows in emission order. This is the drift anchor: the
/// `prom-drift` lint extracts these names and diffs them against the
/// committed `results/smoke/gateway_metrics.prom` artifact, and a golden
/// test pins them to what [`MetricsSnapshot::to_prometheus`] actually
/// renders — so adding, renaming or dropping a metric without updating
/// both the artifact and this table fails CI.
pub const PROM_TYPE_ROWS: &[(&str, &str)] = &[
    ("dp_gateway_submitted_total", "counter"),
    ("dp_gateway_admitted_total", "counter"),
    ("dp_gateway_shed_queue_full_total", "counter"),
    ("dp_gateway_shed_evicted_total", "counter"),
    ("dp_gateway_rate_limited_total", "counter"),
    ("dp_gateway_model_unknown_total", "counter"),
    ("dp_gateway_unsupported_total", "counter"),
    ("dp_gateway_rejected_closed_total", "counter"),
    ("dp_gateway_rejected_degraded_total", "counter"),
    ("dp_gateway_dispatched_total", "counter"),
    ("dp_gateway_dropped_closed_total", "counter"),
    ("dp_gateway_deadline_exceeded_total", "counter"),
    ("dp_gateway_cancelled_total", "counter"),
    ("dp_gateway_drain_aborted_total", "counter"),
    ("dp_gateway_completed_total", "counter"),
    ("dp_gateway_failed_total", "counter"),
    ("dp_gateway_samples_completed_total", "counter"),
    ("dp_gateway_queue_depth", "gauge"),
    ("dp_gateway_queue_depth_peak", "gauge"),
    ("dp_gateway_queue_depth_reservoir", "summary"),
    ("dp_gateway_worker_stalled_total", "counter"),
    ("dp_gateway_workers_respawned_total", "counter"),
    ("dp_gateway_degraded", "gauge"),
    ("dp_gateway_queue_wait_ns", "histogram"),
    ("dp_gateway_service_ns", "histogram"),
    ("dp_gateway_model_requests_total", "counter"),
    ("dp_gateway_model_samples_total", "counter"),
    ("dp_gateway_model_service_ns_total", "counter"),
];

impl MetricsSnapshot {
    /// Requests shed in total (full-ring rejections + evictions).
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_evicted
    }

    /// Renders the snapshot as stable, diffable JSON (hand-rolled; serde
    /// is outside the offline dependency allow-list). Keys are emitted in
    /// a fixed order so successive snapshots diff cleanly.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n  \"requests\": {");
        let fields: [(&str, u64); 17] = [
            ("submitted", self.submitted),
            ("admitted", self.admitted),
            ("shed_queue_full", self.shed_queue_full),
            ("shed_evicted", self.shed_evicted),
            ("rate_limited", self.rate_limited),
            ("model_unknown", self.model_unknown),
            ("unsupported", self.unsupported),
            ("rejected_closed", self.rejected_closed),
            ("rejected_degraded", self.rejected_degraded),
            ("dispatched", self.dispatched),
            ("dropped_closed", self.dropped_closed),
            ("deadline_exceeded", self.deadline_exceeded),
            ("cancelled", self.cancelled),
            ("drain_aborted", self.drain_aborted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("samples_completed", self.samples_completed),
        ];
        for (i, (k, v)) in fields.iter().enumerate() {
            let comma = if i + 1 < fields.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{k}\": {v}{comma}");
        }
        let _ = write!(
            s,
            "\n  }},\n  \"queue\": {{\n    \"depth\": {},\n    \"depth_peak\": {},\n    \
             \"wait_p50_ns\": {},\n    \"wait_p99_ns\": {}\n  }},\n  \"service\": {{\n    \
             \"count\": {},\n    \"p50_ns\": {},\n    \"p99_ns\": {}\n  }},\n  \"engine\": {{\n    \
             \"worker_stalled\": {},\n    \"workers_respawned\": {},\n    \
             \"degraded\": {}\n  }},\n  \"models\": [",
            self.queue_depth,
            self.queue_depth_peak,
            self.queue_wait.quantile_ns(0.50),
            self.queue_wait.quantile_ns(0.99),
            self.service.count(),
            self.service.quantile_ns(0.50),
            self.service.quantile_ns(0.99),
            self.worker_stalled,
            self.workers_respawned,
            self.degraded,
        );
        for (i, m) in self.per_model.iter().enumerate() {
            let comma = if i + 1 < self.per_model.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                s,
                "\n    {{\"key\": \"{}\", \"admitted\": {}, \"completed\": {}, \"failed\": {}, \
                 \"shed\": {}, \"expired\": {}, \"samples\": {}, \"service_ns\": {}}}{comma}",
                m.key.replace('\\', "\\\\").replace('"', "\\\""),
                m.admitted,
                m.completed,
                m.failed,
                m.shed,
                m.expired,
                m.samples,
                m.service_ns,
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Renders the snapshot in Prometheus **text exposition format**
    /// (version 0.0.4): one counter per request-lifecycle field, gauges
    /// for the ring depth, the two log₂ histograms as cumulative
    /// `_bucket{le="…"}`/`_sum`/`_count` series, and labelled per-model
    /// counters. Durations are exposed in nanoseconds (the `_ns` name
    /// suffix marks the unit); bucket bounds are the histogram's native
    /// powers of two, truncated after the last non-empty bucket (the
    /// mandatory `+Inf` bucket always closes the series).
    ///
    /// Output is deterministic for a given snapshot (fixed metric order,
    /// per-model rows sorted by key), unit-tested against a golden string.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let counters: [(&str, u64); 17] = [
            ("submitted", self.submitted),
            ("admitted", self.admitted),
            ("shed_queue_full", self.shed_queue_full),
            ("shed_evicted", self.shed_evicted),
            ("rate_limited", self.rate_limited),
            ("model_unknown", self.model_unknown),
            ("unsupported", self.unsupported),
            ("rejected_closed", self.rejected_closed),
            ("rejected_degraded", self.rejected_degraded),
            ("dispatched", self.dispatched),
            ("dropped_closed", self.dropped_closed),
            ("deadline_exceeded", self.deadline_exceeded),
            ("cancelled", self.cancelled),
            ("drain_aborted", self.drain_aborted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("samples_completed", self.samples_completed),
        ];
        for (name, v) in counters {
            let _ = writeln!(s, "# TYPE dp_gateway_{name}_total counter");
            let _ = writeln!(s, "dp_gateway_{name}_total {v}");
        }
        let _ = writeln!(s, "# TYPE dp_gateway_queue_depth gauge");
        let _ = writeln!(s, "dp_gateway_queue_depth {}", self.queue_depth);
        let _ = writeln!(s, "# TYPE dp_gateway_queue_depth_peak gauge");
        let _ = writeln!(s, "dp_gateway_queue_depth_peak {}", self.queue_depth_peak);
        // The dispatcher's recent-depth reservoir as a three-row summary.
        // `stat` (not `quantile`) because min/mean/max are not quantile
        // ranks; the `_count` series is always present so the family
        // survives in the exposition (and the drift anchor) when tracing
        // is off.
        let reservoir = "dp_gateway_queue_depth_reservoir";
        let _ = writeln!(s, "# TYPE {reservoir} summary");
        if let Some(d) = &self.queue_depth_reservoir {
            for (stat, v) in [("min", d.min), ("mean", d.mean), ("max", d.max)] {
                let _ = writeln!(s, "{reservoir}{{stat=\"{stat}\"}} {v}");
            }
            let _ = writeln!(s, "{reservoir}_count {}", d.count);
        } else {
            let _ = writeln!(s, "{reservoir}_count 0");
        }
        let _ = writeln!(s, "# TYPE dp_gateway_worker_stalled_total counter");
        let _ = writeln!(s, "dp_gateway_worker_stalled_total {}", self.worker_stalled);
        let _ = writeln!(s, "# TYPE dp_gateway_workers_respawned_total counter");
        let _ = writeln!(
            s,
            "dp_gateway_workers_respawned_total {}",
            self.workers_respawned
        );
        let _ = writeln!(s, "# TYPE dp_gateway_degraded gauge");
        let _ = writeln!(s, "dp_gateway_degraded {}", u64::from(self.degraded));
        for (name, h) in [
            ("dp_gateway_queue_wait_ns", &self.queue_wait),
            ("dp_gateway_service_ns", &self.service),
        ] {
            let _ = writeln!(s, "# TYPE {name} histogram");
            let total = h.count();
            if let Some(last) = h.counts.iter().rposition(|&c| c != 0) {
                let mut cumulative = 0u64;
                for (i, &c) in h.counts.iter().enumerate().take(last + 1) {
                    cumulative += c;
                    // Bucket i holds integer durations in [2^i, 2^(i+1)),
                    // i.e. at most 2^(i+1) − 1 ns — that inclusive bound is
                    // the `le` value, keeping the exposition's ≤ semantics
                    // exact at power-of-two observations.
                    let _ = writeln!(
                        s,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        (1u128 << (i + 1)) - 1
                    );
                }
            }
            let _ = writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(s, "{name}_sum {}", h.sum_ns);
            let _ = writeln!(s, "{name}_count {total}");
        }
        let escape = |v: &str| {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        };
        let _ = writeln!(s, "# TYPE dp_gateway_model_requests_total counter");
        for m in &self.per_model {
            let model = escape(&m.key);
            for (outcome, v) in [
                ("admitted", m.admitted),
                ("completed", m.completed),
                ("failed", m.failed),
                ("shed", m.shed),
                ("expired", m.expired),
            ] {
                let _ = writeln!(
                    s,
                    "dp_gateway_model_requests_total{{model=\"{model}\",outcome=\"{outcome}\"}} {v}"
                );
            }
        }
        let _ = writeln!(s, "# TYPE dp_gateway_model_samples_total counter");
        for m in &self.per_model {
            let _ = writeln!(
                s,
                "dp_gateway_model_samples_total{{model=\"{}\"}} {}",
                escape(&m.key),
                m.samples
            );
        }
        let _ = writeln!(s, "# TYPE dp_gateway_model_service_ns_total counter");
        for m in &self.per_model {
            let _ = writeln!(
                s,
                "dp_gateway_model_service_ns_total{{model=\"{}\"}} {}",
                escape(&m.key),
                m.service_ns
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-only counter bump, keeping the ordering annotation in one
    /// place.
    fn add(c: &AtomicU64, v: u64) {
        // relaxed-ok: single-threaded test setup; nothing to order against.
        c.fetch_add(v, Ordering::Relaxed);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile_ns(0.5), 0);
        // 10 samples at ~1µs, 1 outlier at ~1ms.
        for _ in 0..10 {
            h.record_ns(1_000);
        }
        h.record_ns(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 11);
        let p50 = snap.quantile_ns(0.5);
        assert!((1_024..=2_048).contains(&p50), "{p50}");
        let p99 = snap.quantile_ns(0.99);
        assert!(p99 >= 1_000_000, "{p99}");
        // Extremes stay in range.
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.snapshot().count(), 13);
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let m = GatewayMetrics::default();
        add(&m.submitted, 7);
        add(&m.admitted, 5);
        add(&m.shed_queue_full, 2);
        let mm = m.model(&ModelKey::new("iris", "posit<8,0>"));
        add(&mm.admitted, 5);
        m.queue_wait.record_ns(500);
        let snap = m.snapshot(3);
        assert_eq!(snap.submitted, 7);
        assert_eq!(snap.shed_total(), 2);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.per_model.len(), 1);
        assert_eq!(snap.per_model[0].admitted, 5);
        let json = snap.to_json();
        assert!(json.contains("\"submitted\": 7"), "{json}");
        assert!(json.contains("\"iris@posit<8,0>\""), "{json}");
        // Balanced braces/brackets — the writer emits well-formed JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn prometheus_exposition_matches_golden_string() {
        // A small, fully pinned snapshot rendered end to end: counters,
        // gauges, truncated cumulative histogram buckets, +Inf/_sum/_count
        // and labelled per-model rows, in this exact order.
        let m = GatewayMetrics::default();
        add(&m.submitted, 7);
        add(&m.admitted, 5);
        add(&m.shed_queue_full, 2);
        add(&m.rate_limited, 1);
        add(&m.dispatched, 5);
        add(&m.completed, 4);
        add(&m.failed, 1);
        add(&m.samples_completed, 40);
        add(&m.deadline_exceeded, 1);
        m.note_depth(6);
        m.queue_wait.record_ns(1000); // bucket [512, 1024) → le="1023"
        m.queue_wait.record_ns(1000);
        m.service.record_ns(5000); // bucket [4096, 8192) → le="8191"
        let mm = m.model(&ModelKey::new("iris", "posit<8,0>"));
        add(&mm.admitted, 5);
        add(&mm.completed, 4);
        add(&mm.failed, 1);
        add(&mm.shed, 2);
        add(&mm.expired, 1);
        add(&mm.samples, 40);
        add(&mm.service_ns, 5000);

        let golden = "\
# TYPE dp_gateway_submitted_total counter
dp_gateway_submitted_total 7
# TYPE dp_gateway_admitted_total counter
dp_gateway_admitted_total 5
# TYPE dp_gateway_shed_queue_full_total counter
dp_gateway_shed_queue_full_total 2
# TYPE dp_gateway_shed_evicted_total counter
dp_gateway_shed_evicted_total 0
# TYPE dp_gateway_rate_limited_total counter
dp_gateway_rate_limited_total 1
# TYPE dp_gateway_model_unknown_total counter
dp_gateway_model_unknown_total 0
# TYPE dp_gateway_unsupported_total counter
dp_gateway_unsupported_total 0
# TYPE dp_gateway_rejected_closed_total counter
dp_gateway_rejected_closed_total 0
# TYPE dp_gateway_rejected_degraded_total counter
dp_gateway_rejected_degraded_total 0
# TYPE dp_gateway_dispatched_total counter
dp_gateway_dispatched_total 5
# TYPE dp_gateway_dropped_closed_total counter
dp_gateway_dropped_closed_total 0
# TYPE dp_gateway_deadline_exceeded_total counter
dp_gateway_deadline_exceeded_total 1
# TYPE dp_gateway_cancelled_total counter
dp_gateway_cancelled_total 0
# TYPE dp_gateway_drain_aborted_total counter
dp_gateway_drain_aborted_total 0
# TYPE dp_gateway_completed_total counter
dp_gateway_completed_total 4
# TYPE dp_gateway_failed_total counter
dp_gateway_failed_total 1
# TYPE dp_gateway_samples_completed_total counter
dp_gateway_samples_completed_total 40
# TYPE dp_gateway_queue_depth gauge
dp_gateway_queue_depth 3
# TYPE dp_gateway_queue_depth_peak gauge
dp_gateway_queue_depth_peak 6
# TYPE dp_gateway_queue_depth_reservoir summary
dp_gateway_queue_depth_reservoir{stat=\"min\"} 1
dp_gateway_queue_depth_reservoir{stat=\"mean\"} 3
dp_gateway_queue_depth_reservoir{stat=\"max\"} 6
dp_gateway_queue_depth_reservoir_count 4
# TYPE dp_gateway_worker_stalled_total counter
dp_gateway_worker_stalled_total 0
# TYPE dp_gateway_workers_respawned_total counter
dp_gateway_workers_respawned_total 0
# TYPE dp_gateway_degraded gauge
dp_gateway_degraded 0
# TYPE dp_gateway_queue_wait_ns histogram
dp_gateway_queue_wait_ns_bucket{le=\"1\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"3\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"7\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"15\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"31\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"63\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"127\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"255\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"511\"} 0
dp_gateway_queue_wait_ns_bucket{le=\"1023\"} 2
dp_gateway_queue_wait_ns_bucket{le=\"+Inf\"} 2
dp_gateway_queue_wait_ns_sum 2000
dp_gateway_queue_wait_ns_count 2
# TYPE dp_gateway_service_ns histogram
dp_gateway_service_ns_bucket{le=\"1\"} 0
dp_gateway_service_ns_bucket{le=\"3\"} 0
dp_gateway_service_ns_bucket{le=\"7\"} 0
dp_gateway_service_ns_bucket{le=\"15\"} 0
dp_gateway_service_ns_bucket{le=\"31\"} 0
dp_gateway_service_ns_bucket{le=\"63\"} 0
dp_gateway_service_ns_bucket{le=\"127\"} 0
dp_gateway_service_ns_bucket{le=\"255\"} 0
dp_gateway_service_ns_bucket{le=\"511\"} 0
dp_gateway_service_ns_bucket{le=\"1023\"} 0
dp_gateway_service_ns_bucket{le=\"2047\"} 0
dp_gateway_service_ns_bucket{le=\"4095\"} 0
dp_gateway_service_ns_bucket{le=\"8191\"} 1
dp_gateway_service_ns_bucket{le=\"+Inf\"} 1
dp_gateway_service_ns_sum 5000
dp_gateway_service_ns_count 1
# TYPE dp_gateway_model_requests_total counter
dp_gateway_model_requests_total{model=\"iris@posit<8,0>\",outcome=\"admitted\"} 5
dp_gateway_model_requests_total{model=\"iris@posit<8,0>\",outcome=\"completed\"} 4
dp_gateway_model_requests_total{model=\"iris@posit<8,0>\",outcome=\"failed\"} 1
dp_gateway_model_requests_total{model=\"iris@posit<8,0>\",outcome=\"shed\"} 2
dp_gateway_model_requests_total{model=\"iris@posit<8,0>\",outcome=\"expired\"} 1
# TYPE dp_gateway_model_samples_total counter
dp_gateway_model_samples_total{model=\"iris@posit<8,0>\"} 40
# TYPE dp_gateway_model_service_ns_total counter
dp_gateway_model_service_ns_total{model=\"iris@posit<8,0>\"} 5000
";
        // Post-fill the recorder-sourced reservoir the way
        // `Gateway::snapshot` does, so the summary's labelled rows render.
        let mut snap = m.snapshot(3);
        snap.queue_depth_reservoir = Some(DepthSummary {
            min: 1,
            max: 6,
            mean: 3,
            count: 4,
        });
        assert_eq!(snap.to_prometheus(), golden);
    }

    #[test]
    fn prometheus_empty_histograms_and_label_escaping() {
        let m = GatewayMetrics::default();
        let mm = m.model(&ModelKey::new("we\"ird\\name", "posit<8,0>"));
        add(&mm.admitted, 1);
        let text = m.snapshot(0).to_prometheus();
        // Empty histograms keep the mandatory +Inf/_sum/_count series and
        // emit no finite buckets.
        assert!(text.contains("dp_gateway_queue_wait_ns_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("dp_gateway_queue_wait_ns_bucket{le=\"1\"}"));
        assert!(text.contains("dp_gateway_queue_wait_ns_sum 0"));
        assert!(text.contains("dp_gateway_service_ns_count 0"));
        // Quotes and backslashes in model names are escaped per the
        // exposition format.
        assert!(
            text.contains("model=\"we\\\"ird\\\\name@posit<8,0>\""),
            "{text}"
        );
    }

    #[test]
    fn model_metrics_are_shared_per_key() {
        let m = GatewayMetrics::default();
        let a = m.model(&ModelKey::new("iris", "posit<8,0>"));
        let b = m.model(&ModelKey::new("iris", "posit<8,0>"));
        add(&a.completed, 1);
        // relaxed-ok: same-thread read of a counter bumped above.
        assert_eq!(b.completed.load(Ordering::Relaxed), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn prune_model_removes_the_row_and_later_expositions() {
        // Regression: per-model rows used to live forever — every
        // register/serve/unregister cycle leaked one row into the map and
        // every subsequent /metrics exposition.
        let m = GatewayMetrics::default();
        let keep = ModelKey::new("keep", "posit<8,0>");
        let churn = ModelKey::new("churn", "posit<8,0>");
        let kept = m.model(&keep);
        let churned = m.model(&churn);
        add(&kept.completed, 2);
        add(&churned.completed, 5);
        assert_eq!(m.snapshot(0).per_model.len(), 2);

        assert!(m.prune_model(&churn), "row existed, prune reports it");
        assert!(!m.prune_model(&churn), "second prune is a no-op");
        let snap = m.snapshot(0);
        assert_eq!(snap.per_model.len(), 1);
        assert_eq!(snap.per_model[0].key, keep.to_string());
        let prom = snap.to_prometheus();
        assert!(!prom.contains("churn@"), "{prom}");
        // A held Arc survives the prune (in-flight requests keep
        // counting); re-requesting the key starts a fresh row.
        add(&churned.completed, 1);
        // relaxed-ok: same-thread read of the counter bumped above.
        assert_eq!(churned.completed.load(Ordering::Relaxed), 6);
        let fresh = m.model(&churn);
        assert!(!Arc::ptr_eq(&fresh, &churned));
        // relaxed-ok: fresh row was never bumped.
        assert_eq!(fresh.completed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn prom_type_rows_match_rendered_exposition() {
        // PROM_TYPE_ROWS is the drift anchor the `prom-drift` lint keys
        // on; this pins it to what `to_prometheus` actually renders —
        // every family, kind and order, with at least one per-model row
        // so the labelled families appear.
        let m = GatewayMetrics::default();
        let _ = m.model(&ModelKey::new("iris", "posit<8,0>"));
        let text = m.snapshot(0).to_prometheus();
        let rendered: Vec<(String, String)> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| {
                let mut it = l.split_whitespace();
                (
                    it.next().unwrap_or_default().to_string(),
                    it.next().unwrap_or_default().to_string(),
                )
            })
            .collect();
        let expected: Vec<(String, String)> = PROM_TYPE_ROWS
            .iter()
            .map(|(n, k)| (n.to_string(), k.to_string()))
            .collect();
        assert_eq!(rendered, expected);
    }
}
