//! Gateway completion handles: results (or a shed verdict) come back out
//! of the admission pipeline through these.
//!
//! A [`GatewayHandle`] is handed out at admission, **before** the request
//! is dispatched to the serving engine — the request may still be sitting
//! in the submission ring, may already be running on the pool, or may have
//! been shed by an overload policy. The handle hides that lifecycle:
//! [`poll`](GatewayHandle::poll) never blocks, [`wait`](GatewayHandle::wait)
//! blocks until the request resolves, and a shed request resolves promptly
//! to [`GatewayError::Shed`] instead of hanging forever.
//!
//! Unlike the single-consumer `dp_serve` handles, a gateway handle caches
//! its resolved result: `wait` and `poll` can be called repeatedly (the
//! clone of the first resolution is returned), which makes double-`wait`
//! a defined, tested behavior rather than a panic.

use dp_serve::{BatchHandle, JobError};
use std::sync::{Arc, Condvar, Mutex};

/// Why an admitted request failed to produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayError {
    /// An overload policy shed this request from the submission ring
    /// before it reached the serving engine (e.g. `ShedOldest` evicted it
    /// to make room for newer traffic).
    Shed,
    /// The gateway closed before this request could be dispatched.
    Closed,
    /// The request was dispatched but its serving job failed.
    Job(JobError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Shed => write!(f, "request shed by the gateway overload policy"),
            GatewayError::Closed => write!(f, "gateway closed before the request was dispatched"),
            GatewayError::Job(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<JobError> for GatewayError {
    fn from(e: JobError) -> Self {
        GatewayError::Job(e)
    }
}

/// Where an admitted request currently is in the gateway pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStage {
    /// Still waiting in the submission ring (or being dispatched).
    Queued,
    /// Handed to the serving engine; chunk jobs are queued or running.
    Dispatched,
    /// Resolved: a value, a job failure, or a shed/closed verdict.
    Done,
}

enum HandleState<T> {
    /// In the ring, or a waiter temporarily holds the inner batch handle.
    Queued,
    /// Dispatched to the engine; the inner handle delivers the value.
    Dispatched(BatchHandle<T>),
    /// Final: the cached resolution every `wait`/`poll` clone returns.
    Resolved(Result<Vec<T>, GatewayError>),
}

pub(crate) struct HandleCell<T> {
    state: Mutex<HandleState<T>>,
    ready: Condvar,
}

impl<T> HandleCell<T> {
    /// Resolves the request directly (shed, closed, or an inline empty
    /// result) and wakes every waiter.
    pub(crate) fn resolve(&self, result: Result<Vec<T>, GatewayError>) {
        let mut st = self.state.lock().expect("gateway handle lock");
        *st = HandleState::Resolved(result);
        self.ready.notify_all();
    }

    /// Transitions `Queued` → `Dispatched`, attaching the engine handle
    /// that will deliver the value.
    pub(crate) fn dispatched(&self, inner: BatchHandle<T>) {
        let mut st = self.state.lock().expect("gateway handle lock");
        if matches!(*st, HandleState::Queued) {
            *st = HandleState::Dispatched(inner);
            self.ready.notify_all();
        }
    }
}

/// Handle to one admitted gateway request.
///
/// Resolution is cached: after the first `wait`/successful `poll`, further
/// calls return clones of the same result.
pub struct GatewayHandle<T> {
    cell: Arc<HandleCell<T>>,
}

impl<T> std::fmt::Debug for GatewayHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayHandle")
            .field("stage", &self.stage())
            .finish()
    }
}

impl<T> GatewayHandle<T> {
    /// Creates a pending handle plus the gateway-side cell that resolves
    /// it.
    pub(crate) fn pending() -> (Self, Arc<HandleCell<T>>) {
        let cell = Arc::new(HandleCell {
            state: Mutex::new(HandleState::Queued),
            ready: Condvar::new(),
        });
        (
            GatewayHandle {
                cell: Arc::clone(&cell),
            },
            cell,
        )
    }

    /// Where the request currently is. `Done` covers success, job failure
    /// and shed/closed verdicts alike.
    pub fn stage(&self) -> RequestStage {
        match &*self.cell.state.lock().expect("gateway handle lock") {
            HandleState::Queued => RequestStage::Queued,
            HandleState::Dispatched(_) => RequestStage::Dispatched,
            HandleState::Resolved(_) => RequestStage::Done,
        }
    }

    /// Whether a result (or shed/failure verdict) is available without
    /// blocking.
    pub fn is_done(&self) -> bool {
        match &*self.cell.state.lock().expect("gateway handle lock") {
            HandleState::Resolved(_) => true,
            HandleState::Dispatched(h) => h.is_done(),
            HandleState::Queued => false,
        }
    }
}

impl<T: Clone> GatewayHandle<T> {
    /// Non-blocking: the resolved result if available, `None` while the
    /// request is queued or still running. Safe to call repeatedly —
    /// once resolved, every call returns a clone of the same result.
    pub fn poll(&self) -> Option<Result<Vec<T>, GatewayError>> {
        let mut st = self.cell.state.lock().expect("gateway handle lock");
        match &*st {
            HandleState::Resolved(r) => Some(r.clone()),
            HandleState::Queued => None,
            HandleState::Dispatched(h) => match h.poll() {
                Some(r) => {
                    let r = r.map_err(GatewayError::Job);
                    *st = HandleState::Resolved(r.clone());
                    self.cell.ready.notify_all();
                    Some(r)
                }
                None => None,
            },
        }
    }

    /// Blocks until the request resolves. A shed request returns
    /// [`GatewayError::Shed`] promptly — it never hangs. Repeatable:
    /// a second `wait` returns a clone of the cached result.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Shed`] / [`GatewayError::Closed`] when an overload
    /// policy or shutdown dropped the request, [`GatewayError::Job`] when
    /// a dispatched chunk failed.
    pub fn wait(&self) -> Result<Vec<T>, GatewayError> {
        let mut st = self.cell.state.lock().expect("gateway handle lock");
        loop {
            match &*st {
                HandleState::Resolved(r) => return r.clone(),
                HandleState::Queued => {
                    st = self.cell.ready.wait(st).expect("gateway handle lock");
                }
                HandleState::Dispatched(_) => {
                    // Take the engine handle out (leaving `Queued` as the
                    // "a waiter owns it" placeholder), release the lock,
                    // and block on the engine side; concurrent waiters
                    // sleep on the condvar until we cache the resolution.
                    let HandleState::Dispatched(inner) =
                        std::mem::replace(&mut *st, HandleState::Queued)
                    else {
                        unreachable!("matched Dispatched above")
                    };
                    drop(st);
                    let r = inner.wait().map_err(GatewayError::Job);
                    let mut st = self.cell.state.lock().expect("gateway handle lock");
                    *st = HandleState::Resolved(r.clone());
                    self.cell.ready.notify_all();
                    return r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_before_dispatch_reports_shed() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        assert_eq!(handle.stage(), RequestStage::Queued);
        assert!(!handle.is_done());
        assert_eq!(handle.poll(), None);
        cell.resolve(Err(GatewayError::Shed));
        assert_eq!(handle.stage(), RequestStage::Done);
        assert_eq!(handle.wait(), Err(GatewayError::Shed));
        // Double-wait is defined: the cached verdict comes back again.
        assert_eq!(handle.wait(), Err(GatewayError::Shed));
        assert_eq!(handle.poll(), Some(Err(GatewayError::Shed)));
    }

    #[test]
    fn wait_from_two_threads_returns_the_same_value() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        let handle = Arc::new(handle);
        let h2 = Arc::clone(&handle);
        let t = std::thread::spawn(move || h2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        cell.resolve(Ok(vec![1, 2, 3]));
        assert_eq!(handle.wait(), Ok(vec![1, 2, 3]));
        assert_eq!(t.join().unwrap(), Ok(vec![1, 2, 3]));
    }
}
