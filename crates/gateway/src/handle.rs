//! Gateway completion handles: results (or a shed verdict) come back out
//! of the admission pipeline through these.
//!
//! A [`GatewayHandle`] is handed out at admission, **before** the request
//! is dispatched to the serving engine — the request may still be sitting
//! in the submission ring, may already be running on the pool, or may have
//! been shed by an overload policy. The handle hides that lifecycle:
//! [`poll`](GatewayHandle::poll) never blocks, [`wait`](GatewayHandle::wait)
//! blocks until the request resolves,
//! [`wait_timeout`](GatewayHandle::wait_timeout) bounds the block, and a
//! shed/expired/cancelled request resolves promptly to its typed
//! [`GatewayError`] instead of hanging forever.
//!
//! Unlike the single-consumer `dp_serve` handles, a gateway handle caches
//! its resolved result: `wait` and `poll` can be called repeatedly (the
//! clone of the first resolution is returned), which makes double-`wait`
//! a defined, tested behavior rather than a panic. The first resolution
//! **wins**: once cached it is never overwritten, so a request that was
//! already expired or evicted keeps reporting the same verdict however
//! late the engine-side result limps in.

use crate::check::{self, check_yield, MutexGuard};
use dp_serve::{BatchHandle, CancelToken, JobError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an admitted request failed to produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayError {
    /// An overload policy shed this request from the submission ring
    /// before it reached the serving engine (e.g. `ShedOldest` evicted it
    /// to make room for newer traffic).
    Shed,
    /// The gateway closed before this request could be dispatched.
    Closed,
    /// The request's [`SubmitOptions`](crate::gateway::SubmitOptions)
    /// deadline passed before the dispatcher could hand it to the engine;
    /// its rate-limit tokens were refunded.
    DeadlineExceeded,
    /// The request was cancelled via [`GatewayHandle::cancel`] (while
    /// queued, or mid-flight at a chunk/sample boundary).
    Cancelled,
    /// The serving engine is degraded (worker panic budget tripped) and
    /// dropped this already-admitted request before evaluation.
    Degraded,
    /// The request was dispatched but its serving job failed.
    Job(JobError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Shed => write!(f, "request shed by the gateway overload policy"),
            GatewayError::Closed => write!(f, "gateway closed before the request was dispatched"),
            GatewayError::DeadlineExceeded => {
                write!(f, "request deadline passed before dispatch")
            }
            GatewayError::Cancelled => write!(f, "request cancelled by the caller"),
            GatewayError::Degraded => {
                write!(f, "serving engine degraded; admitted request dropped")
            }
            GatewayError::Job(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<JobError> for GatewayError {
    fn from(e: JobError) -> Self {
        match e {
            // A job cancelled through the request's token surfaces as the
            // gateway-level cancel verdict, not a generic job failure.
            JobError::Cancelled => GatewayError::Cancelled,
            other => GatewayError::Job(other),
        }
    }
}

/// Where an admitted request currently is in the gateway pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStage {
    /// Still waiting in the submission ring (or being dispatched).
    Queued,
    /// Handed to the serving engine; chunk jobs are queued or running.
    Dispatched,
    /// Resolved: a value, a job failure, or a shed/closed verdict.
    Done,
}

enum HandleState<T> {
    /// In the ring, or a waiter temporarily holds the inner batch handle.
    Queued,
    /// Dispatched to the engine; the inner handle delivers the value.
    Dispatched(BatchHandle<T>),
    /// Final: the cached resolution every `wait`/`poll` clone returns.
    Resolved(Result<Vec<T>, GatewayError>),
}

pub(crate) struct HandleCell<T> {
    state: check::Mutex<HandleState<T>>,
    ready: check::Condvar,
    /// The request's cancellation token, shared with its chunk jobs.
    cancel: CancelToken,
}

impl<T> HandleCell<T> {
    /// The handle-state lock.
    fn st(&self) -> MutexGuard<'_, HandleState<T>> {
        // panic-ok: the handle lock is only poisoned if a holder panicked
        // mid-section; the sections here are enum swaps and clones of
        // caller data — a poisoned lock means the resolution state is
        // already torn and no verdict would be trustworthy.
        self.state.lock().expect("gateway handle lock")
    }

    /// Resolves the request (shed, closed, expired, cancelled, or an
    /// inline empty result) and wakes every waiter. **First resolution
    /// wins**: an already-resolved cell is left untouched, so a late
    /// verdict can never clobber the one callers may have seen.
    pub(crate) fn resolve(&self, result: Result<Vec<T>, GatewayError>) {
        check_yield!("handle.resolve");
        let mut st = self.st();
        if matches!(*st, HandleState::Resolved(_)) {
            return;
        }
        *st = HandleState::Resolved(result);
        self.ready.notify_all();
    }

    /// Transitions `Queued` → `Dispatched`, attaching the engine handle
    /// that will deliver the value.
    pub(crate) fn dispatched(&self, inner: BatchHandle<T>) {
        check_yield!("handle.dispatched");
        let mut st = self.st();
        if matches!(*st, HandleState::Queued) {
            *st = HandleState::Dispatched(inner);
            self.ready.notify_all();
        }
    }

    /// The request's cancel token (cloned into chunk jobs at dispatch).
    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

impl<T: Clone> HandleCell<T> {
    /// Caches `result` unless a resolution already exists; returns the
    /// winning resolution either way. Used by waiters bringing an engine-
    /// side result home, so a concurrent `cancel`'s verdict is honored.
    fn cache_resolution(
        &self,
        result: Result<Vec<T>, GatewayError>,
    ) -> Result<Vec<T>, GatewayError> {
        check_yield!("handle.cache");
        let mut st = self.st();
        if let HandleState::Resolved(existing) = &*st {
            return existing.clone();
        }
        *st = HandleState::Resolved(result.clone());
        self.ready.notify_all();
        result
    }
}

/// Handle to one admitted gateway request.
///
/// Resolution is cached: after the first `wait`/successful `poll`, further
/// calls return clones of the same result.
pub struct GatewayHandle<T> {
    cell: Arc<HandleCell<T>>,
}

impl<T> std::fmt::Debug for GatewayHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayHandle")
            .field("stage", &self.stage())
            .finish()
    }
}

impl<T> GatewayHandle<T> {
    /// Creates a pending handle plus the gateway-side cell that resolves
    /// it.
    pub(crate) fn pending() -> (Self, Arc<HandleCell<T>>) {
        let cell = Arc::new(HandleCell {
            state: check::mutex("gateway.handle", HandleState::Queued),
            ready: check::condvar(),
            cancel: CancelToken::new(),
        });
        (
            GatewayHandle {
                cell: Arc::clone(&cell),
            },
            cell,
        )
    }

    /// Where the request currently is. `Done` covers success, job failure
    /// and shed/closed verdicts alike.
    pub fn stage(&self) -> RequestStage {
        match &*self.cell.st() {
            HandleState::Queued => RequestStage::Queued,
            HandleState::Dispatched(_) => RequestStage::Dispatched,
            HandleState::Resolved(_) => RequestStage::Done,
        }
    }

    /// Whether a result (or shed/failure verdict) is available without
    /// blocking.
    pub fn is_done(&self) -> bool {
        match &*self.cell.st() {
            HandleState::Resolved(_) => true,
            HandleState::Dispatched(h) => h.is_done(),
            HandleState::Queued => false,
        }
    }

    /// Requests cancellation of this request. Idempotent.
    ///
    /// * Still queued in the ring → the handle resolves **immediately** to
    ///   [`GatewayError::Cancelled`]; the dispatcher later discards the
    ///   dead ring entry and refunds its rate-limit tokens.
    /// * Already dispatched → if the engine result is already available it
    ///   wins (cancellation is cooperative, not retroactive); otherwise
    ///   the handle resolves to [`GatewayError::Cancelled`] right away and
    ///   the token tells in-flight chunks to stop at the next chunk/sample
    ///   boundary. This also makes `cancel` the recovery path for a
    ///   request whose completion was lost (e.g. under the
    ///   `drop_completion` fault): the handle can always be resolved.
    /// * Already resolved → no-op; the existing verdict sticks.
    pub fn cancel(&self) {
        self.cell.cancel.cancel();
        check_yield!("handle.cancel");
        let mut st = self.cell.st();
        match &*st {
            HandleState::Resolved(_) => return,
            HandleState::Queued => {
                *st = HandleState::Resolved(Err(GatewayError::Cancelled));
            }
            HandleState::Dispatched(h) => {
                let r = match h.poll() {
                    Some(done) => done.map_err(GatewayError::from),
                    None => Err(GatewayError::Cancelled),
                };
                *st = HandleState::Resolved(r);
            }
        }
        self.cell.ready.notify_all();
    }
}

impl<T: Clone> GatewayHandle<T> {
    /// Non-blocking: the resolved result if available, `None` while the
    /// request is queued or still running. Safe to call repeatedly —
    /// once resolved, every call returns a clone of the same result.
    /// A request that was shed, expired or evicted resolves promptly: its
    /// cached verdict comes back on the very next `poll`, never a spin.
    pub fn poll(&self) -> Option<Result<Vec<T>, GatewayError>> {
        check_yield!("handle.poll");
        let mut st = self.cell.st();
        match &*st {
            HandleState::Resolved(r) => Some(r.clone()),
            HandleState::Queued => None,
            HandleState::Dispatched(h) => match h.poll() {
                Some(r) => {
                    let r = r.map_err(GatewayError::from);
                    *st = HandleState::Resolved(r.clone());
                    self.cell.ready.notify_all();
                    Some(r)
                }
                None => None,
            },
        }
    }

    /// Blocks until the request resolves. A shed request returns
    /// [`GatewayError::Shed`] promptly — it never hangs. Repeatable:
    /// a second `wait` returns a clone of the cached result.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Shed`] / [`GatewayError::Closed`] when an overload
    /// policy or shutdown dropped the request,
    /// [`GatewayError::DeadlineExceeded`] when it expired undispatched,
    /// [`GatewayError::Cancelled`] after a cancel, [`GatewayError::Job`]
    /// when a dispatched chunk failed.
    pub fn wait(&self) -> Result<Vec<T>, GatewayError> {
        let mut st = self.cell.st();
        loop {
            match &*st {
                HandleState::Resolved(r) => return r.clone(),
                HandleState::Queued => {
                    // panic-ok: see `HandleCell::st`
                    st = self.cell.ready.wait(st).expect("gateway handle lock");
                }
                HandleState::Dispatched(_) => {
                    // Take the engine handle out (leaving `Queued` as the
                    // "a waiter owns it" placeholder), release the lock,
                    // and block on the engine side; concurrent waiters
                    // sleep on the condvar until we cache the resolution.
                    check_yield!("handle.wait_take");
                    let HandleState::Dispatched(inner) =
                        std::mem::replace(&mut *st, HandleState::Queued)
                    else {
                        // panic-ok: the match arm above guarantees the variant
                        unreachable!("matched Dispatched above")
                    };
                    drop(st);
                    let r = inner.wait().map_err(GatewayError::from);
                    return self.cell.cache_resolution(r);
                }
            }
        }
    }

    /// Bounded [`GatewayHandle::wait`]: `Some(result)` if the request
    /// resolves within `timeout`, `None` otherwise. The handle stays
    /// fully usable after a timeout (wait again, poll, or
    /// [`cancel`](GatewayHandle::cancel) and then wait for the prompt
    /// [`GatewayError::Cancelled`]). This is the primitive that keeps
    /// chaos tests and latency-sensitive callers hang-free whatever fault
    /// is in play.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<T>, GatewayError>> {
        // clock-ok: caller-side wall-clock wait bound (the OS condvar wait
        // below is real-time anyway); the serving pipeline's own
        // timestamps go through the dp_trace clock seam.
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.st();
        loop {
            match &*st {
                HandleState::Resolved(r) => return Some(r.clone()),
                HandleState::Queued => {
                    // clock-ok: see the deadline note above.
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _timeout) = self
                        .cell
                        .ready
                        .wait_timeout(st, deadline - now)
                        .expect("gateway handle lock"); // panic-ok: see `HandleCell::st`
                    st = guard;
                }
                HandleState::Dispatched(_) => {
                    check_yield!("handle.wait_take");
                    let HandleState::Dispatched(inner) =
                        std::mem::replace(&mut *st, HandleState::Queued)
                    else {
                        // panic-ok: the match arm above guarantees the variant
                        unreachable!("matched Dispatched above")
                    };
                    drop(st);
                    // clock-ok: see the deadline note above.
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match inner.wait_timeout(remaining) {
                        Some(r) => {
                            return Some(self.cell.cache_resolution(r.map_err(GatewayError::from)))
                        }
                        None => {
                            // Timed out with the engine still working: put
                            // the inner handle back for future waiters
                            // (unless a verdict landed meanwhile).
                            check_yield!("handle.restore");
                            let mut st = self.cell.st();
                            if matches!(*st, HandleState::Queued) {
                                *st = HandleState::Dispatched(inner);
                            }
                            self.cell.ready.notify_all();
                            return None;
                        }
                    }
                }
            }
        }
    }
}

/// Seeded PCT interleave tests (compiled only with `--features
/// check-yield`): the checker drives double-`wait`, poll-after-cancel
/// and the cancel-vs-resolve race through ≥1000 schedules per seed.
/// Assertions run *inside* the scheduled bodies — a violated invariant
/// surfaces as a panic-in-schedule finding, so `findings.is_empty()`
/// is the pass condition for every run at once.
#[cfg(all(test, feature = "check-yield"))]
mod interleave_tests {
    use super::*;
    use dp_check::sched::explore;

    const SEEDS: [u64; 3] = [0x6A7E_0001, 0x6A7E_0002, 0x6A7E_0003];
    const RUNS: usize = 1000;

    /// Two waiters race the resolver. Both must come home with the same
    /// (only) resolution whatever order the three threads interleave in,
    /// including the ISSUE's prime suspect: both waiters parked before
    /// the resolve, or one arriving after the verdict is already cached.
    #[test]
    fn double_wait_sees_one_resolution_under_every_schedule() {
        for master in SEEDS {
            let out = explore(master, RUNS, 3, |_| {
                let (handle, cell) = GatewayHandle::<u32>::pending();
                let handle = Arc::new(handle);
                let h1 = Arc::clone(&handle);
                let h2 = Arc::clone(&handle);
                vec![
                    Box::new(move || {
                        assert_eq!(h1.wait(), Ok(vec![7]));
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(move || {
                        // The bounded-wait path: generous real-time bound,
                        // virtualized by the scheduler if the run stalls.
                        let got = h2.wait_timeout(Duration::from_secs(60));
                        assert_eq!(got, Some(Ok(vec![7])));
                    }),
                    Box::new(move || {
                        cell.resolve(Ok(vec![7]));
                    }),
                ]
            });
            assert_eq!(out.schedules, RUNS);
            assert!(
                out.findings.is_empty(),
                "seed {master:#x}: {:?}",
                out.findings
            );
            assert!(
                out.distinct_traces >= 4,
                "seed {master:#x}: the seed is not steering the schedule \
                 ({} distinct traces)",
                out.distinct_traces
            );
        }
    }

    /// Cancel races a late resolve while an observer waits. First
    /// resolution wins and then *sticks*: whatever verdict the observer's
    /// `wait` returns, every later `poll` and `wait` must repeat it, and
    /// `poll` directly after `cancel` returns must never be `None`.
    #[test]
    fn cancel_resolve_race_verdict_is_stable() {
        for master in SEEDS {
            let out = explore(master, RUNS, 3, |_| {
                let (handle, cell) = GatewayHandle::<u32>::pending();
                let handle = Arc::new(handle);
                let hc = Arc::clone(&handle);
                let ho = Arc::clone(&handle);
                vec![
                    Box::new(move || {
                        hc.cancel();
                        // Poll-after-cancel: cancel always leaves the
                        // handle resolved, so a spin here is a bug.
                        let polled = hc.poll();
                        assert!(polled.is_some(), "poll after cancel spun");
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(move || {
                        cell.resolve(Ok(vec![9]));
                    }),
                    Box::new(move || {
                        let first = ho.wait();
                        assert!(
                            first == Ok(vec![9]) || first == Err(GatewayError::Cancelled),
                            "unexpected verdict {first:?}"
                        );
                        // The cached verdict must repeat verbatim.
                        assert_eq!(ho.poll(), Some(first.clone()));
                        assert_eq!(ho.wait(), first);
                    }),
                ]
            });
            assert_eq!(out.schedules, RUNS);
            assert!(
                out.findings.is_empty(),
                "seed {master:#x}: {:?}",
                out.findings
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_before_dispatch_reports_shed() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        assert_eq!(handle.stage(), RequestStage::Queued);
        assert!(!handle.is_done());
        assert_eq!(handle.poll(), None);
        cell.resolve(Err(GatewayError::Shed));
        assert_eq!(handle.stage(), RequestStage::Done);
        assert_eq!(handle.wait(), Err(GatewayError::Shed));
        // Double-wait is defined: the cached verdict comes back again.
        assert_eq!(handle.wait(), Err(GatewayError::Shed));
        assert_eq!(handle.poll(), Some(Err(GatewayError::Shed)));
    }

    #[test]
    fn first_resolution_wins() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        cell.resolve(Err(GatewayError::DeadlineExceeded));
        // A late second verdict (e.g. an engine result limping in after
        // expiry) must not clobber what callers already saw.
        cell.resolve(Ok(vec![1, 2, 3]));
        assert_eq!(handle.wait(), Err(GatewayError::DeadlineExceeded));
    }

    #[test]
    fn wait_from_two_threads_returns_the_same_value() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        let handle = Arc::new(handle);
        let h2 = Arc::clone(&handle);
        let t = std::thread::spawn(move || h2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        cell.resolve(Ok(vec![1, 2, 3]));
        assert_eq!(handle.wait(), Ok(vec![1, 2, 3]));
        assert_eq!(t.join().unwrap(), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn wait_timeout_times_out_then_resolves() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        assert_eq!(handle.wait_timeout(Duration::from_millis(10)), None);
        cell.resolve(Ok(vec![4]));
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(10)),
            Some(Ok(vec![4]))
        );
        // Cached: repeatable.
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(10)),
            Some(Ok(vec![4]))
        );
    }

    #[test]
    fn cancel_of_queued_request_resolves_immediately() {
        let (handle, cell) = GatewayHandle::<u32>::pending();
        assert!(!cell.cancel_token().is_cancelled());
        handle.cancel();
        assert!(cell.cancel_token().is_cancelled());
        assert_eq!(handle.wait(), Err(GatewayError::Cancelled));
        // Idempotent, and the verdict sticks.
        handle.cancel();
        assert_eq!(handle.poll(), Some(Err(GatewayError::Cancelled)));
    }
}
