//! The bounded multi-producer submission ring between clients and the
//! dispatcher.
//!
//! Any number of producer threads push admitted requests; one dispatcher
//! thread pops them and forwards to the serving engine. Capacity is fixed
//! at construction — when the ring is full the *caller* decides what
//! gives (reject the newcomer, evict the oldest, or block), which is how
//! the gateway's overload policies stay pluggable: the ring mechanically
//! reports `Full`/returns an evictee and never sheds anything itself.
//!
//! The ring also carries the control plane the dispatcher needs: a
//! `closing` flag (after which pops drain the backlog and then return
//! `None`), a `paused` flag (dispatch stalls while producers keep
//! admitting — the deterministic way to build a backlog in tests and
//! benches), and an idle condition (`empty ∧ not mid-dispatch`) that
//! `wait_idle` callers block on.

use crate::check::{self, check_yield, MutexGuard};
use std::collections::VecDeque;
use std::time::Instant;

/// Outcome of a non-blocking push.
pub(crate) enum TryPush<E> {
    /// Enqueued; ring had room.
    Pushed,
    /// Enqueued after evicting the oldest entry, which is returned to the
    /// caller to shed (`ShedOldest`).
    PushedEvicting(E),
    /// Ring full and eviction not requested; the entry comes back to the
    /// caller (`ShedNewest`, or `Block` on the non-blocking path).
    Full(E),
    /// The ring is closing; nothing was enqueued.
    Closed(E),
}

struct RingState<E> {
    queue: VecDeque<E>,
    closing: bool,
    /// When `close` was first called — the dispatcher's drain deadline is
    /// measured from this instant.
    closed_at: Option<Instant>,
    paused: bool,
    /// An entry has been popped but its dispatch has not finished yet —
    /// the ring is not idle even though `queue` may be empty.
    dispatching: bool,
}

pub(crate) struct SubmissionRing<E> {
    capacity: usize,
    state: check::Mutex<RingState<E>>,
    /// Wakes the dispatcher: work arrived, pause flipped, or closing.
    work: check::Condvar,
    /// Wakes producers blocked on space and idle-waiters: an entry left
    /// the queue, a dispatch finished, or closing.
    space: check::Condvar,
}

impl<E> SubmissionRing<E> {
    pub(crate) fn new(capacity: usize) -> Self {
        SubmissionRing {
            capacity: capacity.max(1),
            state: check::mutex(
                "gateway.ring",
                RingState {
                    queue: VecDeque::with_capacity(capacity.max(1)),
                    closing: false,
                    closed_at: None,
                    paused: false,
                    dispatching: false,
                },
            ),
            work: check::condvar(),
            space: check::condvar(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// The ring lock.
    fn st(&self) -> MutexGuard<'_, RingState<E>> {
        // panic-ok: the ring lock is only poisoned if a holder panicked
        // inside a critical section; every section here is VecDeque/flag
        // manipulation that cannot panic, so poisoning means the state is
        // already untrustworthy and serving from it would be worse.
        self.state.lock().expect("ring lock")
    }

    pub(crate) fn len(&self) -> usize {
        self.st().queue.len()
    }

    /// Non-blocking push. With `evict_oldest`, a full ring makes room by
    /// handing the oldest entry back for the caller to shed.
    pub(crate) fn try_push(&self, entry: E, evict_oldest: bool) -> TryPush<E> {
        check_yield!("ring.try_push");
        let mut st = self.st();
        if st.closing {
            return TryPush::Closed(entry);
        }
        if st.queue.len() >= self.capacity {
            if !evict_oldest {
                return TryPush::Full(entry);
            }
            check_yield!("ring.evict");
            // panic-ok: the full branch guarantees `queue.len() >= capacity
            // >= 1`, so the queue cannot be empty here.
            let oldest = st.queue.pop_front().expect("capacity >= 1, queue full");
            st.queue.push_back(entry);
            drop(st);
            self.work.notify_one();
            return TryPush::PushedEvicting(oldest);
        }
        st.queue.push_back(entry);
        drop(st);
        self.work.notify_one();
        TryPush::Pushed
    }

    /// Blocking push (`Block` policy): waits for space instead of
    /// shedding. Returns the entry if the ring closed while waiting.
    pub(crate) fn push_blocking(&self, entry: E) -> Result<(), E> {
        check_yield!("ring.push_blocking");
        let mut st = self.st();
        loop {
            if st.closing {
                return Err(entry);
            }
            if st.queue.len() < self.capacity {
                st.queue.push_back(entry);
                drop(st);
                self.work.notify_one();
                return Ok(());
            }
            st = self.space.wait(st).expect("ring lock"); // panic-ok: see `SubmissionRing::st`
        }
    }

    /// Dispatcher side: blocks for the next entry, honoring `paused`.
    /// Returns `None` only once the ring is closing **and** drained, so
    /// shutdown never strands an admitted request. Marks the ring as
    /// mid-dispatch; pair every `Some` with [`SubmissionRing::dispatch_done`].
    pub(crate) fn pop_for_dispatch(&self) -> Option<E> {
        check_yield!("ring.pop");
        let mut st = self.st();
        loop {
            // Closing overrides pause: the backlog always drains.
            if !st.paused || st.closing {
                if let Some(entry) = st.queue.pop_front() {
                    st.dispatching = true;
                    drop(st);
                    // Space freed: wake one blocked producer (and any
                    // idle-waiter, though the ring is not idle yet).
                    self.space.notify_all();
                    return Some(entry);
                }
                if st.closing {
                    return None;
                }
            }
            st = self.work.wait(st).expect("ring lock"); // panic-ok: see `SubmissionRing::st`
        }
    }

    /// Marks the in-flight dispatch as finished (the entry reached the
    /// engine or was resolved), letting idle-waiters re-check.
    pub(crate) fn dispatch_done(&self) {
        check_yield!("ring.dispatch_done");
        let mut st = self.st();
        st.dispatching = false;
        drop(st);
        self.space.notify_all();
    }

    /// Blocks until the ring is idle: empty and not mid-dispatch.
    pub(crate) fn wait_empty(&self) {
        let mut st = self.st();
        while !st.queue.is_empty() || st.dispatching {
            st = self.space.wait(st).expect("ring lock"); // panic-ok: see `SubmissionRing::st`
        }
    }

    /// Stalls dispatch (admission continues — the backlog grows).
    pub(crate) fn pause(&self) {
        self.st().paused = true;
    }

    /// Resumes dispatch.
    pub(crate) fn resume(&self) {
        let mut st = self.st();
        st.paused = false;
        drop(st);
        self.work.notify_all();
    }

    /// Begins shutdown: rejects new pushes, lets the dispatcher drain the
    /// backlog, wakes every blocked producer and waiter.
    pub(crate) fn close(&self) {
        check_yield!("ring.close");
        let mut st = self.st();
        st.closing = true;
        if st.closed_at.is_none() {
            // clock-ok: drain-deadline anchor — shutdown must be bounded
            // in wall time even under a virtualized trace clock.
            st.closed_at = Some(Instant::now());
        }
        drop(st);
        self.work.notify_all();
        self.space.notify_all();
    }

    /// The instant shutdown began, if [`SubmissionRing::close`] has been
    /// called. The dispatcher bounds its backlog drain against this.
    pub(crate) fn closing_since(&self) -> Option<Instant> {
        self.st().closed_at
    }
}

/// Seeded PCT interleave tests (compiled only with `--features
/// check-yield`): the conservation law behind the gateway's metrics —
/// every admitted entry has exactly one fate — checked across ≥1000
/// schedules per seed with real producer/dispatcher thread bodies.
#[cfg(all(test, feature = "check-yield"))]
mod interleave_tests {
    use super::*;
    use dp_check::sched::explore;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn bump(c: &AtomicUsize) {
        // relaxed-ok: per-run test tally, read only after the schedule
        // has joined every thread.
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn get(c: &AtomicUsize) -> usize {
        // relaxed-ok: see `bump` — the run's threads are already joined.
        c.load(Ordering::Relaxed)
    }

    /// Two producers push four entries through a capacity-2 ring with
    /// `ShedOldest` eviction while one dispatcher drains; the last
    /// producer out closes the ring. Under every schedule:
    /// `popped + evicted == submitted` (no entry is lost or doubled),
    /// and neither `Full` nor `Closed` can occur (eviction always makes
    /// room; close happens only after the final push).
    #[test]
    fn every_entry_has_exactly_one_fate_under_every_schedule() {
        for master in [0x21C6_0001u64, 0x21C6_0002, 0x21C6_0003] {
            let mut audits: Vec<[Arc<AtomicUsize>; 3]> = Vec::new();
            let out = explore(master, 1000, 3, |_| {
                let ring = Arc::new(SubmissionRing::new(2));
                let popped = Arc::new(AtomicUsize::new(0));
                let evicted = Arc::new(AtomicUsize::new(0));
                let anomalies = Arc::new(AtomicUsize::new(0));
                let live_producers = Arc::new(AtomicUsize::new(2));
                audits.push([
                    Arc::clone(&popped),
                    Arc::clone(&evicted),
                    Arc::clone(&anomalies),
                ]);
                let mut bodies: Vec<Box<dyn FnOnce() + Send>> = (0..2u32)
                    .map(|p| {
                        let ring = Arc::clone(&ring);
                        let evicted = Arc::clone(&evicted);
                        let anomalies = Arc::clone(&anomalies);
                        let live = Arc::clone(&live_producers);
                        Box::new(move || {
                            for i in 0..2u32 {
                                match ring.try_push(p * 2 + i, true) {
                                    TryPush::Pushed => {}
                                    TryPush::PushedEvicting(_) => bump(&evicted),
                                    TryPush::Full(_) | TryPush::Closed(_) => bump(&anomalies),
                                }
                            }
                            // Last producer out begins shutdown, so the
                            // dispatcher's drain loop terminates. AcqRel:
                            // the close must happen-after both push runs.
                            if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                                ring.close();
                            }
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect();
                let dispatcher_ring = Arc::clone(&ring);
                let dispatcher_popped = Arc::clone(&popped);
                bodies.push(Box::new(move || {
                    while dispatcher_ring.pop_for_dispatch().is_some() {
                        bump(&dispatcher_popped);
                        dispatcher_ring.dispatch_done();
                    }
                }));
                bodies
            });
            assert_eq!(out.schedules, 1000);
            assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
            assert!(
                out.distinct_traces >= 10,
                "seed {master:#x}: the seed is not steering the schedule \
                 ({} distinct traces)",
                out.distinct_traces
            );
            let mut eviction_seen = false;
            for (run, [popped, evicted, anomalies]) in audits.iter().enumerate() {
                assert_eq!(get(anomalies), 0, "seed {master:#x} run {run}: Full/Closed");
                assert_eq!(
                    get(popped) + get(evicted),
                    4,
                    "seed {master:#x} run {run}: conservation broken \
                     (popped {}, evicted {})",
                    get(popped),
                    get(evicted)
                );
                eviction_seen |= get(evicted) > 0;
            }
            assert!(
                eviction_seen,
                "seed {master:#x}: no schedule ever filled the ring — the \
                 test is not exercising the eviction path"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_full_and_evict() {
        let ring = SubmissionRing::new(2);
        assert!(matches!(ring.try_push(1, false), TryPush::Pushed));
        assert!(matches!(ring.try_push(2, false), TryPush::Pushed));
        // Full: rejected newcomer comes back.
        assert!(matches!(ring.try_push(3, false), TryPush::Full(3)));
        assert_eq!(ring.len(), 2);
        // Full + evict: oldest (1) comes back, newcomer admitted.
        assert!(matches!(ring.try_push(4, true), TryPush::PushedEvicting(1)));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.pop_for_dispatch(), Some(2));
        ring.dispatch_done();
        assert_eq!(ring.pop_for_dispatch(), Some(4));
        ring.dispatch_done();
    }

    #[test]
    fn close_drains_then_stops() {
        let ring = SubmissionRing::new(4);
        assert!(matches!(ring.try_push(1, false), TryPush::Pushed));
        assert!(matches!(ring.try_push(2, false), TryPush::Pushed));
        ring.close();
        assert!(matches!(ring.try_push(3, false), TryPush::Closed(3)));
        // The backlog still drains in order…
        assert_eq!(ring.pop_for_dispatch(), Some(1));
        ring.dispatch_done();
        assert_eq!(ring.pop_for_dispatch(), Some(2));
        ring.dispatch_done();
        // …then pops return None.
        assert_eq!(ring.pop_for_dispatch(), None);
    }

    #[test]
    fn pause_stalls_dispatch_but_not_admission() {
        let ring = Arc::new(SubmissionRing::new(8));
        ring.pause();
        assert!(matches!(ring.try_push(7, false), TryPush::Pushed));
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || r2.pop_for_dispatch());
        // Dispatcher is parked on the paused ring; admission still works.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(matches!(ring.try_push(8, false), TryPush::Pushed));
        assert_eq!(ring.len(), 2);
        ring.resume();
        assert_eq!(t.join().unwrap(), Some(7));
        ring.dispatch_done();
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let ring = Arc::new(SubmissionRing::new(1));
        assert!(matches!(ring.try_push(1, false), TryPush::Pushed));
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || r2.push_blocking(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        // Producer is blocked; popping frees space and unblocks it.
        assert_eq!(ring.pop_for_dispatch(), Some(1));
        ring.dispatch_done();
        assert!(t.join().unwrap().is_ok());
        assert_eq!(ring.pop_for_dispatch(), Some(2));
        ring.dispatch_done();
    }

    #[test]
    fn wait_empty_sees_mid_dispatch_entries() {
        let ring = Arc::new(SubmissionRing::new(4));
        assert!(matches!(ring.try_push(1, false), TryPush::Pushed));
        let popped = ring.pop_for_dispatch();
        assert_eq!(popped, Some(1));
        // Queue is empty but dispatch is in flight: wait_empty must block.
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || r2.wait_empty());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished());
        ring.dispatch_done();
        t.join().unwrap();
    }
}
