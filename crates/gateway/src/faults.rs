//! Compile-time seam for `dp_fault` failure points on the gateway side.
//!
//! Mirrors `dp_serve::faults`: with the `fault-inject` feature the named
//! points call into the process-global `dp_fault` plan; without it the
//! hook is an inlined `false` the optimizer deletes, so release builds
//! carry zero overhead.

pub(crate) mod points {
    /// Fired by the dispatcher right after popping a ring entry, scoped by
    /// the request's logical model name. A planned `Sleep` here widens the
    /// expiry-vs-dispatch race window deterministically.
    pub(crate) const DELAY_DISPATCH: &str = "delay_dispatch";
    /// Fired inside the gateway's per-chunk closure, after the chunk
    /// accounting guard exists, so an injected panic unwinds through the
    /// request metrics exactly like a real evaluation panic.
    pub(crate) const PANIC_IN_CHUNK: &str = "panic_in_chunk";
}

#[cfg(feature = "fault-inject")]
pub(crate) fn fire(point: &'static str, scope: Option<&str>) -> bool {
    dp_fault::apply(point, scope)
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fire(_point: &'static str, _scope: Option<&str>) -> bool {
    false
}
