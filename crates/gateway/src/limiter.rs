//! Per-model token-bucket rate limiting.
//!
//! A bucket holds up to `burst` tokens and refills continuously at
//! `samples_per_sec`. Admission charges one token **per sample** (so a
//! 64-sample batch costs 64 tokens), which makes limits mean what an
//! operator expects — sustained samples per second with a bounded burst —
//! independent of how clients batch their traffic.
//!
//! Buckets are configured per **logical model name** at build time
//! ([`crate::GatewayBuilder::rate_limit`]), so every quantization of a
//! model (`iris@posit<8,0>`, `iris@fixed<8,5>`, …) draws from one shared
//! budget — the paper's multi-format comparison traffic counts as one
//! model's load, not three.

use crate::check::{self, check_yield, MutexGuard};
use std::time::Instant;

/// A token-bucket limit: sustained rate plus burst headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Maximum tokens the bucket holds (= the largest burst admitted from
    /// a full bucket). Clamped to ≥ 1.
    pub burst: f64,
    /// Refill rate in samples per second. `0.0` means no refill — the
    /// bucket only ever serves its initial burst (useful in tests).
    pub samples_per_sec: f64,
}

impl RateLimit {
    /// A limit admitting `samples_per_sec` sustained with 1 second of
    /// burst headroom.
    pub fn per_sec(samples_per_sec: f64) -> Self {
        RateLimit {
            burst: samples_per_sec.max(1.0),
            samples_per_sec,
        }
    }
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// One model's token bucket. Starts full.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    limit: RateLimit,
    state: check::Mutex<BucketState>,
}

impl TokenBucket {
    pub(crate) fn new(limit: RateLimit) -> Self {
        let limit = RateLimit {
            burst: limit.burst.max(1.0),
            samples_per_sec: limit.samples_per_sec.max(0.0),
        };
        TokenBucket {
            limit,
            state: check::mutex(
                "gateway.limiter",
                BucketState {
                    tokens: limit.burst,
                    // clock-ok: rate limiting is a real-time contract
                    // (tokens per wall-clock second), not a serving-path
                    // timestamp; the trace clock never virtualizes it.
                    last_refill: Instant::now(),
                },
            ),
        }
    }

    /// The bucket lock.
    fn st(&self) -> MutexGuard<'_, BucketState> {
        // panic-ok: the bucket lock is only poisoned if a holder panicked
        // mid-section; the sections are pure float arithmetic that cannot
        // panic, so a poisoned bucket means worse problems than a lost
        // rate limit.
        self.state.lock().expect("token bucket lock")
    }

    /// Returns `cost` tokens to the bucket (capped at `burst`) — used
    /// when a charged request is subsequently shed without serving
    /// anything, so overload doesn't also burn the client's rate budget.
    pub(crate) fn refund(&self, cost: f64) {
        check_yield!("limiter.refund");
        let mut st = self.st();
        st.tokens = (st.tokens + cost.clamp(0.0, self.limit.burst)).min(self.limit.burst);
    }

    /// Tries to charge `cost` tokens (one per sample), refilling first.
    /// A cost larger than `burst` is clamped to `burst`, so an oversized
    /// batch is admitted whenever the bucket is full rather than being
    /// unconditionally starved.
    pub(crate) fn try_acquire(&self, cost: f64) -> bool {
        let cost = cost.clamp(0.0, self.limit.burst);
        check_yield!("limiter.try_acquire");
        let mut st = self.st();
        // clock-ok: see `last_refill` in the constructor.
        let now = Instant::now();
        let refill = now.duration_since(st.last_refill).as_secs_f64() * self.limit.samples_per_sec;
        st.tokens = (st.tokens + refill).min(self.limit.burst);
        st.last_refill = now;
        if st.tokens >= cost {
            st.tokens -= cost;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_served_then_exhausted() {
        // No refill: only the initial burst is available.
        let bucket = TokenBucket::new(RateLimit {
            burst: 10.0,
            samples_per_sec: 0.0,
        });
        assert!(bucket.try_acquire(6.0));
        assert!(bucket.try_acquire(4.0));
        assert!(!bucket.try_acquire(1.0));
    }

    #[test]
    fn oversized_batches_are_clamped_to_burst() {
        let bucket = TokenBucket::new(RateLimit {
            burst: 8.0,
            samples_per_sec: 0.0,
        });
        // A 100-sample batch drains the full bucket but is admitted.
        assert!(bucket.try_acquire(100.0));
        assert!(!bucket.try_acquire(1.0));
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let bucket = TokenBucket::new(RateLimit {
            burst: 4.0,
            samples_per_sec: 1_000.0,
        });
        assert!(bucket.try_acquire(4.0));
        assert!(!bucket.try_acquire(4.0));
        // 1000/s refills 4 tokens in ~4 ms; 50 ms is plenty even on a
        // loaded CI box.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(bucket.try_acquire(4.0));
    }

    #[test]
    fn per_sec_constructor_gives_one_second_burst() {
        let limit = RateLimit::per_sec(250.0);
        assert_eq!(limit.burst, 250.0);
        assert_eq!(limit.samples_per_sec, 250.0);
    }
}
