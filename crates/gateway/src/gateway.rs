//! The gateway proper: non-blocking admission in front of a
//! [`ServeEngine`], with a bounded submission ring, overload policies,
//! per-model rate limits, request deadlines and cancellation.
//!
//! ```text
//! clients ──try_submit──▶ [bounded ring] ──dispatcher──▶ [engine injector] ──▶ workers
//!              │                │ (overload policy:            │ (throttled: at most
//!              │ verdicts       │  Block / ShedNewest /        │  max_inflight_chunks
//!              ▼                │  ShedOldest;                 │  queued + running;
//!        Admitted / QueueFull / │  lazy deadline expiry)       │  watchdog + panic budget)
//!        ModelUnknown / RateLimited / Degraded
//! ```
//!
//! Admission never blocks on [`Gateway::try_submit_forward`] /
//! [`Gateway::try_submit_classify`]: the caller gets a typed
//! [`Admission`] verdict immediately. A single dispatcher thread drains
//! the ring and forwards requests through the engine's non-blocking
//! [`ServeEngine::try_dispatch`] seam, throttled so the engine's internal
//! queue stays bounded too — backpressure surfaces in the ring, where the
//! overload policy decides who pays for a burst.
//!
//! # Request lifecycle
//!
//! ```text
//! submitted ──▶ admitted ──▶ dispatched ──▶ completed
//!     │             │             │
//!     │             ├─▶ shed      ├─▶ failed (chunk panic / stall)
//!     │             ├─▶ expired   └─▶ cancelled (mid-flight)
//!     │             ├─▶ cancelled (while queued)
//!     │             └─▶ dropped (closed / drain deadline / degraded)
//!     └─▶ rejected (queue full / unknown / rate limited /
//!                   unsupported / closed / degraded)
//! ```
//!
//! Every admitted request resolves to exactly one typed outcome through
//! its [`GatewayHandle`] — shed, expired, cancelled and dropped requests
//! resolve promptly rather than hanging, and [`GatewayHandle::wait_timeout`]
//! bounds any residual wait.

use crate::check::check_yield;
use crate::faults;
use crate::handle::{GatewayError, GatewayHandle, HandleCell};
use crate::limiter::{RateLimit, TokenBucket};
use crate::metrics::{bump, bump_by, GatewayMetrics, MetricsSnapshot, ModelMetrics};
use crate::ring::{SubmissionRing, TryPush};
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_serve::{
    classify_chunk_cancellable, forward_chunk_cancellable, CancelToken, DispatchOptions,
    EngineConfig, JobError, ModelKey, ModelRegistry, PanicBudget, ServeEngine, ServeError,
    WatchdogConfig,
};
use dp_trace::{Clock, Recorder, TerminalKind, TraceConfig, TraceCtx};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the dispatcher sleeps per headroom-wait slice; bounds how
/// stale a deadline/drain check can get while the engine is saturated.
const DISPATCH_POLL: Duration = Duration::from_millis(20);

/// Cancel-aware per-chunk evaluator shape (forward bits or class indices),
/// shared with the engine's canonical evaluators.
type ChunkEval<T> = fn(&QuantizedMlp, &[Vec<f32>], &CancelToken) -> Result<Vec<T>, JobError>;

/// What a full submission ring does with the overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// `submit_*` blocks the producer until space frees (classic
    /// backpressure; `try_submit_*` still never blocks — it reports
    /// [`Admission::QueueFull`]). Maximizes completeness, exposes callers
    /// to burst latency.
    Block,
    /// Reject the incoming request ([`Admission::QueueFull`]); everything
    /// already admitted keeps its place. Favors requests already in
    /// flight.
    ShedNewest,
    /// Evict the **oldest** queued request (its handle resolves to
    /// [`GatewayError::Shed`]) and admit the newcomer. Favors fresh
    /// traffic — the evictee was going to be the staleset response anyway.
    ShedOldest,
}

impl OverloadPolicy {
    /// Stable lowercase name (bench metadata, logs).
    pub fn as_str(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedNewest => "shed_newest",
            OverloadPolicy::ShedOldest => "shed_oldest",
        }
    }
}

/// Per-request submission options: a completion deadline and a priority
/// hint, carried with the request through the ring.
///
/// ```
/// use dp_gateway::SubmitOptions;
/// use std::time::Duration;
///
/// let opts = SubmitOptions::new().deadline_in(Duration::from_millis(250));
/// assert!(opts.deadline.is_some());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Absolute deadline: if the dispatcher has not handed the request to
    /// the engine by this instant, it is lazily expired — the handle
    /// resolves to [`GatewayError::DeadlineExceeded`] and the request's
    /// rate-limit tokens are refunded. `None` (the default) never expires.
    pub deadline: Option<Instant>,
    /// Advisory priority (0 = most urgent). Carried in the ring entry but
    /// not yet acted on — dispatch stays FIFO until priority classes land
    /// (see ROADMAP); recorded now so the wire format is forward-stable.
    pub priority_hint: Option<u8>,
    /// Request id for the flight recorder: network front ends pass the
    /// wire request id so timelines correlate with client logs; `None`
    /// makes the gateway assign one (high bit set, to keep the spaces
    /// visually apart). Also the deterministic sampler input.
    pub trace_id: Option<u64>,
    /// When the request's frame was received off the wire, so traced
    /// timelines include the pre-admission network stage. `None` for
    /// in-process submissions.
    pub received: Option<Instant>,
}

impl SubmitOptions {
    /// Default options: no deadline, no priority hint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an absolute deadline.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn deadline_in(mut self, timeout: Duration) -> Self {
        // clock-ok: caller-side sugar computing an absolute wall-clock
        // deadline at the submission boundary; the gateway's seam-based
        // clock only *checks* deadlines, it does not mint them.
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets the advisory priority hint (0 = most urgent).
    pub fn priority_hint(mut self, hint: u8) -> Self {
        self.priority_hint = Some(hint);
        self
    }

    /// Attaches a trace identity: the request id the flight recorder
    /// samples on and renders, plus the frame-receive instant (network
    /// front ends stamp this so timelines start at the wire).
    pub fn traced_from(mut self, trace_id: u64, received: Instant) -> Self {
        self.trace_id = Some(trace_id);
        self.received = Some(received);
        self
    }
}

/// Maps a gateway verdict onto its flight-recorder terminal kind.
fn terminal_of(e: &GatewayError) -> TerminalKind {
    match e {
        GatewayError::Shed => TerminalKind::Shed,
        GatewayError::Closed => TerminalKind::Closed,
        GatewayError::DeadlineExceeded => TerminalKind::Expired,
        GatewayError::Cancelled => TerminalKind::Cancelled,
        GatewayError::Degraded => TerminalKind::Degraded,
        GatewayError::Job(_) => TerminalKind::Failed,
    }
}

/// Typed admission verdict: what happened to a `submit`/`try_submit`.
pub enum Admission<T> {
    /// Admitted; results arrive through the handle (which may still
    /// resolve to [`GatewayError::Shed`] under `ShedOldest` pressure, or
    /// to [`GatewayError::DeadlineExceeded`] if its deadline passes
    /// undispatched).
    Admitted(GatewayHandle<T>),
    /// The ring was full and the policy shed this request. Nothing was
    /// enqueued; retry later or switch policy.
    QueueFull,
    /// No model is registered under the key.
    ModelUnknown(ModelKey),
    /// The model's token bucket is empty — the caller exceeded the
    /// configured samples-per-second budget.
    RateLimited,
    /// The operation is undefined for the model's format (raw EMAC
    /// activations of the `F32` baseline).
    Unsupported(String),
    /// The gateway is shutting down.
    Closed,
    /// The serving engine is degraded — its worker panic budget tripped
    /// (see [`PanicBudget`]) — and admission is rejected until an
    /// operator calls [`Gateway::reset_degraded`]. Metrics and
    /// already-admitted work keep draining.
    Degraded,
}

// Manual impl: the derive would demand `T: Debug`, which the payload
// types don't all provide (and the handle renders its stage anyway).
impl<T> std::fmt::Debug for Admission<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Admission::Admitted(h) => f.debug_tuple("Admitted").field(h).finish(),
            Admission::QueueFull => write!(f, "QueueFull"),
            Admission::ModelUnknown(key) => f.debug_tuple("ModelUnknown").field(key).finish(),
            Admission::RateLimited => write!(f, "RateLimited"),
            Admission::Unsupported(what) => f.debug_tuple("Unsupported").field(what).finish(),
            Admission::Closed => write!(f, "Closed"),
            Admission::Degraded => write!(f, "Degraded"),
        }
    }
}

impl<T> Admission<T> {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }

    /// The handle, if admitted.
    pub fn handle(self) -> Option<GatewayHandle<T>> {
        match self {
            Admission::Admitted(h) => Some(h),
            _ => None,
        }
    }

    /// The handle, panicking on any rejection verdict (test/bench sugar).
    pub fn expect_admitted(self) -> GatewayHandle<T> {
        match self {
            Admission::Admitted(h) => h,
            // panic-ok: documented test/bench sugar — the method name
            // promises the panic on any rejection verdict.
            other => panic!("expected admission, got {other:?}"),
        }
    }
}

/// One queued request, typed by its result shape.
struct Request<T> {
    /// Logical model name — the rate-limit bucket key (kept so an
    /// eviction or expiry can refund the tokens this request was
    /// charged) and the fault-injection scope.
    model_name: String,
    model: Arc<QuantizedMlp>,
    xs: Vec<Vec<f32>>,
    cell: Arc<HandleCell<T>>,
    model_metrics: Arc<ModelMetrics>,
    enqueued: Instant,
    /// Lazily enforced by the dispatcher; see [`SubmitOptions::deadline`].
    deadline: Option<Instant>,
    /// Carried for future priority-class dispatch (ROADMAP); FIFO today.
    #[allow(dead_code)]
    priority_hint: Option<u8>,
    /// The handle's cancel token, shared with the chunk jobs at dispatch.
    cancel: CancelToken,
    /// Flight-recorder context (`None` when tracing is off); stamped at
    /// each pipeline stage, emits the terminal event at resolution.
    trace: Option<TraceCtx>,
}

impl<T: Clone + Send + 'static> Request<T> {
    /// Resolves the request without dispatching it.
    fn resolve_undispatched(self, reason: GatewayError) {
        match reason {
            GatewayError::Shed => bump(&self.model_metrics.shed),
            GatewayError::DeadlineExceeded => bump(&self.model_metrics.expired),
            _ => {}
        }
        if let Some(t) = &self.trace {
            t.resolve(terminal_of(&reason));
        }
        self.cell.resolve(Err(reason));
    }

    /// Forwards to the engine, wiring per-chunk completion accounting and
    /// the request's cancel token.
    fn dispatch(
        self,
        engine: &ServeEngine,
        metrics: &Arc<GatewayMetrics>,
        clock: &Clock,
        eval: ChunkEval<T>,
    ) {
        let Request {
            model_name,
            model,
            xs,
            cell,
            model_metrics,
            enqueued,
            deadline: _,
            priority_hint: _,
            cancel,
            trace,
        } = self;
        let now = clock.now();
        metrics
            .queue_wait
            .record_ns(now.saturating_duration_since(enqueued).as_nanos() as u64);
        let n_chunks = xs.len().div_ceil(engine.chunk_samples());
        if let Some(t) = &trace {
            t.dispatched(n_chunks as u64);
        }
        let ctx = Arc::new(RequestCtx {
            remaining: AtomicUsize::new(n_chunks),
            failed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            started: now,
            clock: clock.clone(),
            samples: xs.len() as u64,
            metrics: Arc::clone(metrics),
            model_metrics,
            trace,
        });
        let eval_cancel = cancel.clone();
        let fault_scope = model_name.clone();
        // For the dispatch-failure arms below: the context (and the trace
        // handle inside it) moves into the per-chunk closure.
        let trace_err = ctx.trace.clone();
        let per_chunk = move |m: &QuantizedMlp, chunk: &[Vec<f32>]| {
            // The guard's Drop runs even if `eval` panics (during the
            // unwind the engine's job wrapper catches), so every chunk is
            // accounted and the last one closes out the request metrics.
            // The injected panic point sits inside the guard's extent for
            // the same reason.
            let guard = ChunkGuard {
                ctx: Arc::clone(&ctx),
            };
            faults::fire(faults::points::PANIC_IN_CHUNK, Some(&fault_scope));
            let result = eval(m, chunk, &eval_cancel);
            match &result {
                // relaxed-ok: (audited, was SeqCst) the store is ordered
                // before this thread's `remaining` decrement, whose
                // release/acquire chain publishes it to the last chunk
                // out — see `ChunkGuard::drop`.
                Err(JobError::Cancelled) => guard.ctx.cancelled.store(true, Ordering::Relaxed),
                // relaxed-ok: (audited, was SeqCst) see the arm above.
                Err(_) => guard.ctx.failed.store(true, Ordering::Relaxed),
                Ok(_) => {}
            }
            result
        };
        let opts = DispatchOptions {
            scope: Some(model_name),
            cancel: Some(cancel),
        };
        match engine.try_dispatch_with(model, xs, opts, per_chunk) {
            Ok(inner) => {
                bump(&metrics.dispatched);
                cell.dispatched(inner);
            }
            Err(ServeError::Degraded) => {
                // The panic budget tripped between admission and dispatch:
                // the admitted request is dropped with a typed verdict.
                bump(&metrics.rejected_degraded);
                if let Some(t) = &trace_err {
                    t.resolve(TerminalKind::Degraded);
                }
                cell.resolve(Err(GatewayError::Degraded));
            }
            Err(_) => {
                // Engine closed under a still-queued request (only
                // possible if the engine is shut down out from under the
                // gateway): resolve rather than hang the handle.
                bump(&metrics.dropped_closed);
                if let Some(t) = &trace_err {
                    t.resolve(TerminalKind::Closed);
                }
                cell.resolve(Err(GatewayError::Closed));
            }
        }
    }
}

/// Per-request completion context shared by its chunk jobs.
struct RequestCtx {
    remaining: AtomicUsize,
    failed: AtomicBool,
    cancelled: AtomicBool,
    started: Instant,
    /// The gateway's clock seam: service time is measured on it so the
    /// interleaving checker can virtualize trace/metric time.
    clock: Clock,
    samples: u64,
    metrics: Arc<GatewayMetrics>,
    model_metrics: Arc<ModelMetrics>,
    trace: Option<TraceCtx>,
}

/// Decrements the chunk countdown on drop (normal return *or* panic
/// unwind); the last chunk out records service time and the
/// completed/failed/cancelled verdict.
///
/// The counters record what the workers actually executed: a request the
/// watchdog failed with [`JobError::Stalled`] surfaces that error on its
/// handle immediately, while its wedged evaluation — if it ever finishes
/// on the abandoned thread — is what lands here.
struct ChunkGuard {
    ctx: Arc<RequestCtx>,
}

impl Drop for ChunkGuard {
    fn drop(&mut self) {
        let ctx = &self.ctx;
        check_yield!("gateway.chunk.settle");
        if std::thread::panicking() {
            // relaxed-ok: (audited, was SeqCst) ordered before this
            // thread's decrement below; the countdown's release/acquire
            // chain publishes it to the last chunk out.
            ctx.failed.store(true, Ordering::Relaxed);
        }
        // AcqRel (audited, was SeqCst): every chunk's flag stores are
        // ordered before its own decrement; each decrement releases and
        // the final one (observing 1) acquires the whole chain, so the
        // last chunk out sees every other chunk's `failed`/`cancelled`
        // stores — the same edge `Arc::drop` uses to free its payload.
        // No path here compares against any other atomic, so the SeqCst
        // total order bought nothing.
        if let Some(t) = &ctx.trace {
            t.chunk_done();
        }
        if ctx.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // relaxed-ok: (audited, was SeqCst) the AcqRel decrement
            // above already synchronized with every store (same for the
            // `cancelled` load below).
            if ctx.failed.load(Ordering::Relaxed) {
                bump(&ctx.metrics.failed);
                bump(&ctx.model_metrics.failed);
                if let Some(t) = &ctx.trace {
                    t.resolve(TerminalKind::Failed);
                }
            // relaxed-ok: see the `failed` load above.
            } else if ctx.cancelled.load(Ordering::Relaxed) {
                // Cancelled mid-flight: neither completed nor failed.
                bump(&ctx.metrics.cancelled);
                if let Some(t) = &ctx.trace {
                    t.resolve(TerminalKind::Cancelled);
                }
            } else {
                // Service time covers completed requests only, so
                // service_ns / completed is a true per-model mean (a
                // failed request would otherwise inflate it).
                let ns = ctx
                    .clock
                    .now()
                    .saturating_duration_since(ctx.started)
                    .as_nanos() as u64;
                ctx.metrics.service.record_ns(ns);
                bump_by(&ctx.model_metrics.service_ns, ns);
                bump(&ctx.metrics.completed);
                bump(&ctx.model_metrics.completed);
                bump_by(&ctx.metrics.samples_completed, ctx.samples);
                bump_by(&ctx.model_metrics.samples, ctx.samples);
                if let Some(t) = &ctx.trace {
                    t.resolve(TerminalKind::Completed);
                }
            }
        }
    }
}

/// Ring entry: a request of either result shape.
enum Pending {
    Forward(Request<Vec<u32>>),
    Classify(Request<usize>),
}

impl Pending {
    /// Samples this request carries (→ chunk jobs when dispatched).
    fn samples(&self) -> usize {
        match self {
            Pending::Forward(r) => r.xs.len(),
            Pending::Classify(r) => r.xs.len(),
        }
    }

    /// Logical model name (the rate-limit bucket key).
    fn model_name(&self) -> &str {
        match self {
            Pending::Forward(r) => &r.model_name,
            Pending::Classify(r) => &r.model_name,
        }
    }

    /// The request's completion deadline, if any.
    fn deadline(&self) -> Option<Instant> {
        match self {
            Pending::Forward(r) => r.deadline,
            Pending::Classify(r) => r.deadline,
        }
    }

    /// Whether the handle's cancel token has fired.
    fn is_cancelled(&self) -> bool {
        match self {
            Pending::Forward(r) => r.cancel.is_cancelled(),
            Pending::Classify(r) => r.cancel.is_cancelled(),
        }
    }

    fn resolve_undispatched(self, reason: GatewayError) {
        match self {
            Pending::Forward(r) => r.resolve_undispatched(reason),
            Pending::Classify(r) => r.resolve_undispatched(reason),
        }
    }

    fn dispatch(self, engine: &ServeEngine, metrics: &Arc<GatewayMetrics>, clock: &Clock) {
        match self {
            Pending::Forward(r) => r.dispatch(engine, metrics, clock, forward_chunk_cancellable),
            Pending::Classify(r) => r.dispatch(engine, metrics, clock, classify_chunk_cancellable),
        }
    }
}

/// Configures and builds a [`Gateway`] (engine sizing, ring capacity,
/// overload policy, rate limits, supervision, drain deadline) in one
/// place.
#[derive(Debug, Clone)]
pub struct GatewayBuilder {
    workers: usize,
    chunk_samples: usize,
    queue_capacity: usize,
    max_inflight_chunks: usize,
    policy: OverloadPolicy,
    rate_limits: Vec<(String, RateLimit)>,
    drain_deadline: Duration,
    watchdog: Option<WatchdogConfig>,
    panic_budget: Option<PanicBudget>,
    trace: TraceConfig,
    clock: Option<Clock>,
}

impl Default for GatewayBuilder {
    fn default() -> Self {
        GatewayBuilder {
            workers: deep_positron::batch::batch_threads(),
            chunk_samples: 64,
            queue_capacity: 128,
            // 0 = derive from the worker count at build time.
            max_inflight_chunks: 0,
            policy: OverloadPolicy::ShedNewest,
            rate_limits: Vec::new(),
            drain_deadline: Duration::from_secs(30),
            watchdog: None,
            panic_budget: None,
            trace: TraceConfig::default(),
            clock: None,
        }
    }
}

impl GatewayBuilder {
    /// Starts from the defaults: `DEEP_POSITRON_THREADS`-sized pool,
    /// 64-sample chunks, a 128-request ring, `ShedNewest`, no rate
    /// limits, a 30 s shutdown drain deadline, no supervision.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker thread count for the backing [`ServeEngine`] (clamped ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Samples per chunk job (see [`EngineConfig::chunk_samples`]).
    pub fn chunk_samples(mut self, chunk_samples: usize) -> Self {
        self.chunk_samples = chunk_samples.max(1);
        self
    }

    /// Submission-ring capacity in **requests** (clamped ≥ 1): the most
    /// traffic that can wait for dispatch before the overload policy
    /// engages.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Upper bound on chunk jobs queued + running inside the engine
    /// (clamped ≥ 1); the dispatcher waits until a request's chunks fit
    /// under it before dispatching, so backlog surfaces in the bounded
    /// ring instead of the engine's internal queue. A single request
    /// bigger than the whole bound is dispatched alone against a drained
    /// engine, so the engine's instantaneous job count never exceeds
    /// `max(max_inflight_chunks, ceil(largest_request / chunk_samples))`.
    /// Defaults to `4 × workers`, at least 8.
    pub fn max_inflight_chunks(mut self, chunks: usize) -> Self {
        self.max_inflight_chunks = chunks.max(1);
        self
    }

    /// What a full ring does with overflow (default:
    /// [`OverloadPolicy::ShedNewest`]).
    pub fn policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Token-bucket rate limit for every model registered under the
    /// logical name `model` (all its format variants share the budget).
    /// Cost is one token per sample. Repeating a name replaces its limit.
    pub fn rate_limit(mut self, model: impl Into<String>, limit: RateLimit) -> Self {
        let model = model.into();
        self.rate_limits.retain(|(name, _)| *name != model);
        self.rate_limits.push((model, limit));
        self
    }

    /// Bounds how long shutdown spends draining the ring backlog through
    /// a saturated engine (default 30 s). Past the deadline the
    /// dispatcher stops feeding the engine and resolves every remaining
    /// queued request to [`GatewayError::Closed`] (counted in the
    /// `drain_aborted` metric and logged), so `Drop` cannot hang on a
    /// wedged or overloaded pool.
    pub fn drain_deadline(mut self, deadline: Duration) -> Self {
        self.drain_deadline = deadline;
        self
    }

    /// Enables the engine's stall watchdog (see [`WatchdogConfig`]): a
    /// worker stuck past the stall timeout is respawned and only the
    /// stuck chunk's request fails, with
    /// [`JobError::Stalled`].
    pub fn watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Enables the engine's panic budget (see [`PanicBudget`]): too many
    /// worker panics inside the window flip the engine — and the gateway
    /// in front of it — into degraded read-only-metrics mode
    /// ([`Admission::Degraded`]).
    pub fn panic_budget(mut self, budget: PanicBudget) -> Self {
        self.panic_budget = Some(budget);
        self
    }

    /// Flight-recorder configuration (see [`TraceConfig`]). The default
    /// records every 16th request into a 64-slot ring plus every slow
    /// exemplar; [`TraceConfig::off`] disables tracing entirely (no
    /// recorder is allocated, the hot path carries a `None`).
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = cfg;
        self
    }

    /// Overrides the gateway's clock seam (default: [`Clock::real`]).
    /// Tests pass [`Clock::manual`] so queue-wait, service time and
    /// slow-exemplar thresholds are deterministic.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds the gateway: spawns the engine's worker pool (plus its
    /// watchdog, if configured) and the dispatcher thread.
    pub fn build(self) -> Gateway {
        let engine = Arc::new(ServeEngine::new(EngineConfig {
            workers: self.workers,
            chunk_samples: self.chunk_samples,
            watchdog: self.watchdog,
            panic_budget: self.panic_budget,
        }));
        let max_inflight = if self.max_inflight_chunks == 0 {
            (engine.workers() * 4).max(8)
        } else {
            self.max_inflight_chunks
        };
        let ring = Arc::new(SubmissionRing::new(self.queue_capacity));
        let metrics = Arc::new(GatewayMetrics::default());
        // Shared with the dispatcher so lazily expired requests can
        // refund the tokens admission charged them.
        let limiters: Arc<HashMap<String, TokenBucket>> = Arc::new(
            self.rate_limits
                .into_iter()
                .map(|(name, limit)| (name, TokenBucket::new(limit)))
                .collect(),
        );
        let drain_deadline = self.drain_deadline;
        let clock = self.clock.unwrap_or_default();
        let recorder = if self.trace.enabled {
            Some(Recorder::new(self.trace, clock.clone()))
        } else {
            None
        };
        let dispatcher = {
            let ring = Arc::clone(&ring);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let limiters = Arc::clone(&limiters);
            let clock = clock.clone();
            let recorder = recorder.clone();
            std::thread::Builder::new()
                .name("dp-gateway-dispatch".into())
                .spawn(move || {
                    dispatcher_loop(
                        &ring,
                        &engine,
                        &metrics,
                        &limiters,
                        max_inflight,
                        drain_deadline,
                        &clock,
                        recorder.as_ref(),
                    )
                })
                .expect("spawn gateway dispatcher") // panic-ok: thread spawn fails only on OS resource exhaustion at construction
        };
        Gateway {
            engine,
            ring,
            metrics,
            limiters,
            policy: self.policy,
            max_inflight,
            clock,
            recorder,
            next_req_id: AtomicU64::new(1),
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }
}

/// Why the dispatcher discarded a popped entry instead of dispatching it.
/// `now` comes off the gateway's clock seam so expiry is virtualizable.
fn dead_verdict(entry: &Pending, now: Instant) -> Option<GatewayError> {
    if entry.is_cancelled() {
        Some(GatewayError::Cancelled)
    } else if entry.deadline().is_some_and(|d| now >= d) {
        Some(GatewayError::DeadlineExceeded)
    } else {
        None
    }
}

/// Resolves a dead entry with its verdict: refunds the rate-limit tokens
/// admission charged, bumps the matching counters, resolves the handle.
fn discard(
    entry: Pending,
    reason: GatewayError,
    metrics: &GatewayMetrics,
    limiters: &HashMap<String, TokenBucket>,
) {
    if let Some(bucket) = limiters.get(entry.model_name()) {
        bucket.refund(entry.samples() as f64);
    }
    match reason {
        GatewayError::DeadlineExceeded => bump(&metrics.deadline_exceeded),
        GatewayError::Cancelled => bump(&metrics.cancelled),
        GatewayError::Closed => {
            // Only the bounded-drain abort path discards with `Closed`.
            bump(&metrics.drain_aborted);
            bump(&metrics.dropped_closed);
        }
        _ => {}
    }
    entry.resolve_undispatched(reason);
}

/// The dispatcher: drains the ring in admission order, lazily expiring
/// dead entries (deadline passed, cancelled) and throttling on the
/// engine's queue depth so the unbounded injector never grows past
/// `max_inflight` chunk jobs. During shutdown the backlog drain is
/// bounded by `drain_deadline`; past it, remaining entries resolve
/// `Closed` instead of feeding a saturated engine.
#[allow(clippy::too_many_arguments)] // one call site, in the builder
fn dispatcher_loop(
    ring: &SubmissionRing<Pending>,
    engine: &Arc<ServeEngine>,
    metrics: &Arc<GatewayMetrics>,
    limiters: &HashMap<String, TokenBucket>,
    max_inflight: usize,
    drain_deadline: Duration,
    clock: &Clock,
    recorder: Option<&Arc<Recorder>>,
) {
    let mut drain_logged = false;
    while let Some(entry) = ring.pop_for_dispatch() {
        // Fault seam: a planned sleep here models dispatcher latency and
        // deterministically widens the expiry-vs-dispatch race window.
        faults::fire(faults::points::DELAY_DISPATCH, Some(entry.model_name()));

        // Dispatch-side queue-depth sample for `/statusz`: together with
        // the admission-side samples this brackets the depth every request
        // saw around its ring transit.
        if let Some(rec) = recorder {
            rec.note_queue_depth(ring.len());
        }

        // Headroom accounting: this request becomes `chunks` atomic pool
        // jobs, so wait until they fit under the cap — not merely until
        // the current depth is under it. A single request larger than the
        // whole cap waits for a fully drained engine and is dispatched
        // alone, so the engine's instantaneous bound is
        // max(max_inflight, ceil(largest_request / chunk_samples)).
        // The wait runs in slices so entry deadlines, cancellation and
        // the shutdown drain deadline stay live while the engine is
        // saturated.
        let chunks = entry.samples().div_ceil(engine.chunk_samples()).max(1);
        let headroom = max_inflight.saturating_sub(chunks);
        let verdict = loop {
            if let Some(v) = dead_verdict(&entry, clock.now()) {
                break Some(v);
            }
            if let Some(closed_at) = ring.closing_since() {
                if closed_at.elapsed() >= drain_deadline {
                    break Some(GatewayError::Closed);
                }
            }
            if engine
                .wait_depth_below_for(headroom + 1, DISPATCH_POLL)
                .is_some()
            {
                // Final screen right before dispatch, narrowing the
                // expiry-vs-dispatch race to the engine handoff itself.
                break dead_verdict(&entry, clock.now());
            }
        };
        match verdict {
            Some(reason) => {
                if matches!(reason, GatewayError::Closed) && !drain_logged {
                    drain_logged = true;
                    eprintln!(
                        "dp-gateway: shutdown drain exceeded its {drain_deadline:?} deadline; \
                         resolving remaining queued requests as Closed"
                    );
                }
                discard(entry, reason, metrics, limiters);
            }
            None => entry.dispatch(engine, metrics, clock),
        }
        ring.dispatch_done();
    }
}

/// The async admission front end: a bounded ring, a dispatcher and a
/// [`ServeEngine`] behind it. See the [module docs](self) for the
/// pipeline and [`GatewayBuilder`] for the knobs.
///
/// Dropping (or [`Gateway::shutdown`]) is graceful: admission closes, the
/// dispatcher drains every admitted request into the engine (bounded by
/// the builder's [drain deadline](GatewayBuilder::drain_deadline)), the
/// engine drains its queue, and all threads join.
pub struct Gateway {
    engine: Arc<ServeEngine>,
    ring: Arc<SubmissionRing<Pending>>,
    metrics: Arc<GatewayMetrics>,
    limiters: Arc<HashMap<String, TokenBucket>>,
    policy: OverloadPolicy,
    max_inflight: usize,
    /// The clock seam every gateway timestamp reads through.
    clock: Clock,
    /// Flight recorder (`None` when built with [`TraceConfig::off`]).
    recorder: Option<Arc<Recorder>>,
    /// Request-id generator for submissions that don't carry a wire id
    /// ([`SubmitOptions::trace_id`] `None`): ids get the high bit set so
    /// gateway-assigned and wire id spaces stay visually apart.
    next_req_id: AtomicU64,
    /// Taken (and joined) by whichever of [`Gateway::close`] / drop runs
    /// first; a `Mutex` so the close seam works through `&self` (network
    /// front ends hold the gateway in an `Arc`).
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("policy", &self.policy)
            .field("queue_capacity", &self.ring.capacity())
            .field("queue_depth", &self.ring.len())
            .field("max_inflight_chunks", &self.max_inflight)
            .field("degraded", &self.engine.is_degraded())
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// A builder with default sizing.
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder::new()
    }

    /// A gateway with [`GatewayBuilder`] defaults.
    pub fn with_defaults() -> Self {
        GatewayBuilder::new().build()
    }

    /// The model registry (register/lookup/unregister models here).
    pub fn registry(&self) -> &ModelRegistry {
        self.engine.registry()
    }

    /// Unregisters a model **and prunes its per-model metrics row**, so a
    /// churny register/unregister workload doesn't grow the metrics map
    /// (and the `/metrics` exposition) without bound. Returns whether the
    /// key was registered. Prefer this over `registry().remove(..)`, which
    /// leaves the metrics row behind.
    pub fn unregister(&self, key: &ModelKey) -> bool {
        let removed = self.engine.registry().remove(key).is_some();
        // Prune unconditionally: a row can exist for a key that was
        // already unregistered through the raw registry seam.
        self.metrics.prune_model(key);
        removed
    }

    /// The flight recorder behind `/tracez`, if tracing is enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The gateway's clock seam (shared with the recorder).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The backing serving engine (pool stats, queue depth).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Live counters; see also [`Gateway::snapshot`].
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// A consistent-enough copy of every counter plus the current ring
    /// depth, the engine's supervision health (stalls, respawns,
    /// degraded flag) and the flight recorder's queue-depth reservoir,
    /// ready for [`MetricsSnapshot::to_json`] /
    /// [`MetricsSnapshot::to_prometheus`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot(self.ring.len());
        let stats = self.engine.stats();
        snap.worker_stalled = stats.stalled;
        snap.workers_respawned = stats.respawned;
        snap.degraded = stats.degraded;
        snap.queue_depth_reservoir = self
            .recorder
            .as_ref()
            .and_then(|rec| rec.queue_depth_summary());
        snap
    }

    /// Whether the engine behind this gateway is degraded (panic budget
    /// tripped); while degraded every submission returns
    /// [`Admission::Degraded`].
    pub fn is_degraded(&self) -> bool {
        self.engine.is_degraded()
    }

    /// Operator reset: clears the degraded flag and the panic window so
    /// admission resumes.
    pub fn reset_degraded(&self) {
        self.engine.reset_degraded();
    }

    /// The configured overload policy.
    pub fn policy(&self) -> OverloadPolicy {
        self.policy
    }

    /// Requests currently waiting in the submission ring.
    pub fn queue_depth(&self) -> usize {
        self.ring.len()
    }

    /// The ring's request capacity.
    pub fn queue_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Stalls the dispatcher (admission keeps running, the ring fills).
    /// A control seam for tests and benches that need a deterministic
    /// backlog; pair with [`Gateway::resume_dispatch`].
    pub fn pause_dispatch(&self) {
        self.ring.pause();
    }

    /// Resumes dispatch after [`Gateway::pause_dispatch`].
    pub fn resume_dispatch(&self) {
        self.ring.resume();
    }

    /// Non-blocking submission for raw EMAC output activations,
    /// bit-identical to per-sample
    /// [`QuantizedMlp::forward_bits`](deep_positron::QuantizedMlp::forward_bits).
    /// Never blocks, whatever the policy: a full ring under
    /// `Block`/`ShedNewest` yields [`Admission::QueueFull`], under
    /// `ShedOldest` the oldest queued request is evicted instead.
    pub fn try_submit_forward(&self, key: &ModelKey, xs: Vec<Vec<f32>>) -> Admission<Vec<u32>> {
        self.admit(
            key,
            xs,
            SubmitOptions::default(),
            true,
            Pending::Forward,
            false,
        )
    }

    /// [`Gateway::try_submit_forward`] with per-request [`SubmitOptions`]
    /// (deadline, priority hint).
    pub fn try_submit_forward_opts(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
        opts: SubmitOptions,
    ) -> Admission<Vec<u32>> {
        self.admit(key, xs, opts, true, Pending::Forward, false)
    }

    /// Non-blocking submission for class predictions (all formats,
    /// including the `F32` baseline). See [`Gateway::try_submit_forward`]
    /// for the verdict semantics.
    pub fn try_submit_classify(&self, key: &ModelKey, xs: Vec<Vec<f32>>) -> Admission<usize> {
        self.admit(
            key,
            xs,
            SubmitOptions::default(),
            false,
            Pending::Classify,
            false,
        )
    }

    /// [`Gateway::try_submit_classify`] with per-request
    /// [`SubmitOptions`] (deadline, priority hint).
    pub fn try_submit_classify_opts(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
        opts: SubmitOptions,
    ) -> Admission<usize> {
        self.admit(key, xs, opts, false, Pending::Classify, false)
    }

    /// Policy-applying submission for raw activations: under
    /// [`OverloadPolicy::Block`] a full ring **blocks the caller** until
    /// space frees; other policies behave like
    /// [`Gateway::try_submit_forward`].
    pub fn submit_forward(&self, key: &ModelKey, xs: Vec<Vec<f32>>) -> Admission<Vec<u32>> {
        self.admit(
            key,
            xs,
            SubmitOptions::default(),
            true,
            Pending::Forward,
            true,
        )
    }

    /// [`Gateway::submit_forward`] with per-request [`SubmitOptions`].
    pub fn submit_forward_opts(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
        opts: SubmitOptions,
    ) -> Admission<Vec<u32>> {
        self.admit(key, xs, opts, true, Pending::Forward, true)
    }

    /// Policy-applying submission for class predictions; see
    /// [`Gateway::submit_forward`].
    pub fn submit_classify(&self, key: &ModelKey, xs: Vec<Vec<f32>>) -> Admission<usize> {
        self.admit(
            key,
            xs,
            SubmitOptions::default(),
            false,
            Pending::Classify,
            true,
        )
    }

    /// [`Gateway::submit_classify`] with per-request [`SubmitOptions`].
    pub fn submit_classify_opts(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
        opts: SubmitOptions,
    ) -> Admission<usize> {
        self.admit(key, xs, opts, false, Pending::Classify, true)
    }

    /// Blocks until the ring is drained **and** the engine is idle: every
    /// admitted-and-not-shed request has completed.
    pub fn wait_idle(&self) {
        self.ring.wait_empty();
        self.engine.wait_idle();
    }

    /// Graceful shutdown: closes admission, drains the ring through the
    /// dispatcher (bounded by the drain deadline), drains the engine,
    /// joins every thread. Equivalent to dropping the gateway, but
    /// explicit.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Closes the gateway through a shared reference and **settles** it:
    /// admission closes (subsequent submissions report
    /// [`Admission::Closed`]), the dispatcher drains the ring backlog
    /// (bounded by the builder's drain deadline) and is joined, and the
    /// engine finishes every dispatched chunk.
    ///
    /// On return, [`Gateway::snapshot`] reports **final** counters: every
    /// submitted request has resolved to exactly one outcome, so the
    /// lifecycle conservation laws hold exactly — previously a snapshot
    /// taken after shutdown began could race the dispatcher's drain (or
    /// in-flight chunk completions) and observe admitted requests that had
    /// not yet been counted anywhere. Network front ends rely on this for
    /// their post-shutdown metrics scrape.
    ///
    /// Idempotent; later calls (and the eventual drop) are no-ops apart
    /// from joining the worker threads. Already-issued handles still
    /// resolve.
    pub fn close(&self) {
        self.ring.close();
        let dispatcher = self
            .dispatcher
            .lock()
            .expect("dispatcher handle lock") // panic-ok: only poisoned if close/drop itself panicked mid-take
            .take();
        if let Some(h) = dispatcher {
            // panic-ok: dispatcher_loop resolves every entry and catches
            // nothing — a panic there is a gateway bug worth surfacing.
            h.join().expect("gateway dispatcher never panics");
        }
        // The dispatcher has handed every surviving request to the engine;
        // wait for those chunks so completion counters are final too.
        self.engine.wait_idle();
        // Close the engine's own admission as well, mirroring the drop
        // order (ring → engine): nothing can sneak work in via
        // `self.engine()` after the gateway reports itself closed.
        self.engine.close();
    }

    /// Opens a flight-recorder context for an admitted request: wire ids
    /// pass through ([`SubmitOptions::trace_id`]), in-process submissions
    /// get a gateway-assigned id with the high bit set.
    fn begin_trace(
        &self,
        rec: &Arc<Recorder>,
        key: &ModelKey,
        samples: u64,
        opts: &SubmitOptions,
    ) -> TraceCtx {
        let req_id = opts.trace_id.unwrap_or_else(|| {
            // relaxed-ok: unique-id counter; no ordering with other memory.
            self.next_req_id.fetch_add(1, Ordering::Relaxed) | (1 << 63)
        });
        rec.begin(req_id, &key.to_string(), samples, opts.received)
    }

    fn admit<T: Clone + Send + 'static>(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
        opts: SubmitOptions,
        needs_emac: bool,
        wrap: fn(Request<T>) -> Pending,
        may_block: bool,
    ) -> Admission<T> {
        let metrics = &self.metrics;
        bump(&metrics.submitted);
        if self.engine.is_degraded() {
            // Degraded read-only-metrics mode: reject before touching the
            // ring so already-admitted work keeps draining undisturbed.
            bump(&metrics.rejected_degraded);
            return Admission::Degraded;
        }
        let Some(model) = self.engine.registry().get(key) else {
            bump(&metrics.model_unknown);
            return Admission::ModelUnknown(key.clone());
        };
        if needs_emac && matches!(model.format, NumericFormat::F32) {
            bump(&metrics.unsupported);
            return Admission::Unsupported(format!(
                "{key}: raw EMAC activations are undefined for the f32 baseline"
            ));
        }
        if xs.is_empty() {
            // Nothing to evaluate: resolve inline, skip the ring (and the
            // limiter — zero samples cost zero tokens).
            let model_metrics = metrics.model(key);
            let (handle, cell) = GatewayHandle::pending();
            bump(&metrics.admitted);
            bump(&metrics.completed);
            bump(&model_metrics.admitted);
            bump(&model_metrics.completed);
            // Even the inline path opens and closes a trace context, so
            // "every admitted request emits exactly one terminal event"
            // holds without carve-outs.
            if let Some(rec) = &self.recorder {
                let t = self.begin_trace(rec, key, 0, &opts);
                t.resolve(TerminalKind::Completed);
            }
            cell.resolve(Ok(Vec::new()));
            return Admission::Admitted(handle);
        }
        // Rate limit before any per-model bookkeeping: the rejection
        // verdict is the hot path under over-limit traffic and should not
        // pay the metrics-map lookup (a String render + RwLock read).
        let cost = xs.len() as f64;
        let bucket = self.limiters.get(key.name());
        if let Some(bucket) = bucket {
            if !bucket.try_acquire(cost) {
                bump(&metrics.rate_limited);
                return Admission::RateLimited;
            }
        }
        let model_metrics = metrics.model(key);
        let (handle, cell) = GatewayHandle::pending();
        let cancel = cell.cancel_token();
        // The trace context opens only once every pre-admission screen has
        // passed: a rejected-before-admission request (unknown model,
        // rate-limited, degraded, unsupported) never begins a trace, so
        // recorder `begun` equals terminal events at quiescence.
        let trace = self
            .recorder
            .as_ref()
            .map(|rec| self.begin_trace(rec, key, xs.len() as u64, &opts));
        let entry = wrap(Request {
            model_name: key.name().to_string(),
            model,
            xs,
            cell,
            model_metrics: Arc::clone(&model_metrics),
            enqueued: self.clock.now(),
            deadline: opts.deadline,
            priority_hint: opts.priority_hint,
            cancel,
            trace: trace.clone(),
        });
        let outcome = if may_block && matches!(self.policy, OverloadPolicy::Block) {
            match self.ring.push_blocking(entry) {
                Ok(()) => TryPush::Pushed,
                Err(entry) => TryPush::Closed(entry),
            }
        } else {
            let evict = matches!(self.policy, OverloadPolicy::ShedOldest);
            self.ring.try_push(entry, evict)
        };
        match outcome {
            TryPush::Pushed => {
                bump(&metrics.admitted);
                bump(&model_metrics.admitted);
                metrics.note_depth(self.ring.len() as u64);
                if let Some(t) = &trace {
                    t.enqueued();
                }
                if let Some(rec) = &self.recorder {
                    rec.note_queue_depth(self.ring.len());
                }
                Admission::Admitted(handle)
            }
            TryPush::PushedEvicting(evicted) => {
                bump(&metrics.admitted);
                bump(&model_metrics.admitted);
                bump(&metrics.shed_evicted);
                metrics.note_depth(self.ring.len() as u64);
                if let Some(t) = &trace {
                    t.enqueued();
                }
                if let Some(rec) = &self.recorder {
                    rec.note_queue_depth(self.ring.len());
                }
                // The evictee served nothing either: refund the tokens
                // *it* was charged (its model may differ from this one's).
                if let Some(b) = self.limiters.get(evicted.model_name()) {
                    b.refund(evicted.samples() as f64);
                }
                evicted.resolve_undispatched(GatewayError::Shed);
                Admission::Admitted(handle)
            }
            TryPush::Full(entry) => {
                bump(&metrics.shed_queue_full);
                // The shed request served nothing: give its tokens back so
                // overload doesn't burn the client's rate budget on top of
                // rejecting the work.
                if let Some(bucket) = bucket {
                    bucket.refund(cost);
                }
                // Resolves the cell (bumping the model's shed counter), so
                // even a stashed clone of the handle cannot hang.
                entry.resolve_undispatched(GatewayError::Shed);
                Admission::QueueFull
            }
            TryPush::Closed(entry) => {
                bump(&metrics.rejected_closed);
                if let Some(bucket) = bucket {
                    bucket.refund(cost);
                }
                entry.resolve_undispatched(GatewayError::Closed);
                Admission::Closed
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.ring.close();
        let dispatcher = self
            .dispatcher
            .lock()
            .expect("dispatcher handle lock") // panic-ok: see `Gateway::close`
            .take();
        if let Some(h) = dispatcher {
            h.join().expect("gateway dispatcher never panics"); // panic-ok: see `Gateway::close`
        }
        // `self.engine` (the last Arc once the dispatcher is gone) drops
        // after this body: the pool drains every dispatched job and joins
        // its workers — handles held by callers still complete.
    }
}
