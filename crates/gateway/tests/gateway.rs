//! Integration tests: non-blocking admission under burst, overload
//! policies, rate limits, shed-handle semantics and bit-identity of every
//! admitted request against per-sample `forward_bits`.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_gateway::{Admission, Gateway, GatewayError, OverloadPolicy, RateLimit, RequestStage};
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::ModelKey;
use std::sync::Arc;

fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(31).split(50, 31).normalized();
    let mut mlp = Mlp::new(&[4, 8, 3], 31);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.02,
            seed: 31,
        },
    );
    (mlp, split)
}

fn mixed_formats() -> Vec<NumericFormat> {
    vec![
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
    ]
}

/// Small gateway: 2 workers, 4-sample chunks, an 8-request ring.
fn small_gateway(policy: OverloadPolicy) -> Gateway {
    Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .queue_capacity(8)
        .policy(policy)
        .build()
}

fn batch(split: &dp_datasets::TrainTest, n: usize) -> Vec<Vec<f32>> {
    split
        .test
        .features
        .iter()
        .cycle()
        .take(n)
        .cloned()
        .collect()
}

#[test]
fn burst_at_twice_capacity_sheds_newest_and_stays_bit_identical() {
    // The acceptance scenario: a burst of 2× ring capacity against a
    // paused dispatcher. try_submit must never block, shed + admitted
    // must equal submitted, and every admitted request's output must be
    // bit-identical to per-sample forward_bits.
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 12);
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();

    // Stall dispatch so the ring genuinely fills (on a fast machine the
    // dispatcher would otherwise drain the "burst" as it arrives).
    gw.pause_dispatch();
    let burst = 2 * gw.queue_capacity();
    let mut handles = Vec::new();
    let mut shed = 0usize;
    for _ in 0..burst {
        match gw.try_submit_forward(&key, xs.clone()) {
            Admission::Admitted(h) => handles.push(h),
            Admission::QueueFull => shed += 1,
            other => panic!("unexpected verdict: {other:?}"),
        }
    }
    assert_eq!(handles.len(), gw.queue_capacity());
    assert_eq!(shed, burst - gw.queue_capacity());

    let snap = gw.snapshot();
    assert_eq!(snap.submitted, burst as u64);
    assert_eq!(snap.admitted + snap.shed_total(), snap.submitted);
    assert_eq!(snap.queue_depth_peak, gw.queue_capacity() as u64);

    gw.resume_dispatch();
    for h in &handles {
        assert_eq!(h.wait().unwrap(), direct, "admitted output diverged");
    }
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.completed, handles.len() as u64);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.samples_completed, (handles.len() * xs.len()) as u64);
}

#[test]
fn shed_oldest_evicts_admitted_requests_whose_handles_report_shed() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedOldest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 6);
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();

    gw.pause_dispatch();
    let cap = gw.queue_capacity();
    // Admit 2× capacity: every submission is admitted, but the first
    // `cap` get evicted by the second wave.
    let handles: Vec<_> = (0..2 * cap)
        .map(|_| gw.try_submit_forward(&key, xs.clone()).expect_admitted())
        .collect();
    // Evicted handles resolve *before* dispatch resumes — a shed job
    // reports Shed promptly rather than hanging.
    for h in &handles[..cap] {
        assert_eq!(h.stage(), RequestStage::Done);
        assert_eq!(h.wait(), Err(GatewayError::Shed));
        // Double-wait on a shed handle is defined too.
        assert_eq!(h.wait(), Err(GatewayError::Shed));
    }
    gw.resume_dispatch();
    for h in &handles[cap..] {
        assert_eq!(h.wait().unwrap(), direct);
    }
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.submitted, 2 * cap as u64);
    assert_eq!(snap.admitted, 2 * cap as u64);
    assert_eq!(snap.shed_evicted, cap as u64);
    assert_eq!(snap.shed_queue_full, 0);
    assert_eq!(snap.completed, cap as u64);
    // Per-model accounting agrees.
    let row = &snap.per_model[0];
    assert_eq!(row.key, key.to_string());
    assert_eq!(row.admitted, 2 * cap as u64);
    assert_eq!(row.shed, cap as u64);
    assert_eq!(row.completed, cap as u64);
}

#[test]
fn block_policy_blocks_submit_but_never_try_submit() {
    let (mlp, split) = trained_iris();
    let gw = Arc::new(
        Gateway::builder()
            .workers(1)
            .chunk_samples(4)
            .queue_capacity(1)
            .policy(OverloadPolicy::Block)
            .build(),
    );
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 4);

    gw.pause_dispatch();
    let first = gw.submit_forward(&key, xs.clone()).expect_admitted();
    // Ring full: the non-blocking path sheds instead of blocking…
    assert!(matches!(
        gw.try_submit_forward(&key, xs.clone()),
        Admission::QueueFull
    ));
    // …while the blocking path waits for space.
    let gw2 = Arc::clone(&gw);
    let key2 = key.clone();
    let xs2 = xs.clone();
    let blocked = std::thread::spawn(move || gw2.submit_forward(&key2, xs2).expect_admitted());
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(!blocked.is_finished(), "Block policy must wait for space");
    gw.resume_dispatch();
    let second = blocked.join().unwrap();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(first.wait().unwrap(), direct);
    assert_eq!(second.wait().unwrap(), direct);
}

#[test]
fn mixed_format_traffic_through_one_gateway_is_bit_identical() {
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(3)
        .chunk_samples(8)
        .queue_capacity(64)
        .build();
    let models: Vec<(ModelKey, QuantizedMlp)> = mixed_formats()
        .into_iter()
        .map(|fmt| {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            (gw.registry().register("iris", q.clone()).unwrap(), q)
        })
        .collect();
    let xs = batch(&split, 50);
    let forwards: Vec<_> = models
        .iter()
        .map(|(key, _)| gw.try_submit_forward(key, xs.clone()).expect_admitted())
        .collect();
    let classifies: Vec<_> = models
        .iter()
        .map(|(key, _)| gw.try_submit_classify(key, xs.clone()).expect_admitted())
        .collect();
    for (((key, q), fh), ch) in models.iter().zip(&forwards).zip(&classifies) {
        let direct_bits: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        let direct_classes: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
        assert_eq!(fh.wait().unwrap(), direct_bits, "{key}");
        assert_eq!(ch.wait().unwrap(), direct_classes, "{key}");
    }
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.completed, 6);
    assert_eq!(snap.per_model.len(), 3);
    assert_eq!(snap.service.count(), 6);
    assert!(snap.queue_wait.quantile_ns(0.5) > 0);
}

#[test]
fn f32_baseline_classifies_but_has_no_forward_path() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, NumericFormat::F32);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    assert!(matches!(
        gw.try_submit_forward(&key, batch(&split, 4)),
        Admission::Unsupported(_)
    ));
    let xs = batch(&split, 10);
    let h = gw.try_submit_classify(&key, xs.clone()).expect_admitted();
    let direct: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
    assert_eq!(h.wait().unwrap(), direct);
}

#[test]
fn unknown_model_and_rate_limits_yield_typed_verdicts() {
    let (mlp, split) = trained_iris();
    // No refill: a 20-sample budget serves exactly 20 samples.
    let gw = Gateway::builder()
        .workers(2)
        .queue_capacity(16)
        .rate_limit(
            "iris",
            RateLimit {
                burst: 20.0,
                samples_per_sec: 0.0,
            },
        )
        .build();
    let ghost = ModelKey::new("ghost", "posit<8,0>");
    assert!(matches!(
        gw.try_submit_classify(&ghost, batch(&split, 1)),
        Admission::ModelUnknown(k) if k == ghost
    ));
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();
    // Two 10-sample batches fit the budget; the third is limited.
    assert!(gw
        .try_submit_classify(&key, batch(&split, 10))
        .is_admitted());
    assert!(gw
        .try_submit_classify(&key, batch(&split, 10))
        .is_admitted());
    assert!(matches!(
        gw.try_submit_classify(&key, batch(&split, 10)),
        Admission::RateLimited
    ));
    let snap = gw.snapshot();
    assert_eq!(snap.rate_limited, 1);
    assert_eq!(snap.model_unknown, 1);
    gw.wait_idle();
}

#[test]
fn oversized_request_exceeding_inflight_cap_still_completes() {
    // A single request bigger than max_inflight_chunks waits for a
    // drained engine and dispatches alone — it must neither deadlock the
    // dispatcher nor lose bit-identity, and small traffic around it keeps
    // flowing.
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .chunk_samples(2)
        .queue_capacity(8)
        .max_inflight_chunks(2)
        .build();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    // 40 samples / 2-sample chunks = 20 chunk jobs, 10× the inflight cap.
    let big = batch(&split, 40);
    let small = batch(&split, 3);
    let h_big = gw.try_submit_forward(&key, big.clone()).expect_admitted();
    let h_small = gw.try_submit_forward(&key, small.clone()).expect_admitted();
    let direct_big: Vec<Vec<u32>> = big.iter().map(|x| q.forward_bits(x)).collect();
    let direct_small: Vec<Vec<u32>> = small.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(h_big.wait().unwrap(), direct_big);
    assert_eq!(h_small.wait().unwrap(), direct_small);
    gw.wait_idle();
    assert_eq!(gw.snapshot().completed, 2);
}

#[test]
fn shed_requests_refund_their_rate_limit_tokens() {
    // A 20-sample budget with no refill and a 1-deep ring: the shed
    // request must hand its tokens back, so traffic that the ring *can*
    // take later is not double-punished with RateLimited.
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .queue_capacity(1)
        .rate_limit(
            "iris",
            RateLimit {
                burst: 20.0,
                samples_per_sec: 0.0,
            },
        )
        .build();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();
    gw.pause_dispatch();
    // 10 tokens charged and kept (admitted)…
    assert!(gw
        .try_submit_classify(&key, batch(&split, 10))
        .is_admitted());
    // …10 charged and refunded (ring full → shed).
    assert!(matches!(
        gw.try_submit_classify(&key, batch(&split, 10)),
        Admission::QueueFull
    ));
    gw.resume_dispatch();
    gw.wait_idle();
    // The refunded 10 tokens are available again; without the refund this
    // submission would be RateLimited.
    assert!(gw
        .try_submit_classify(&key, batch(&split, 10))
        .is_admitted());
    // And the budget is now genuinely exhausted.
    assert!(matches!(
        gw.try_submit_classify(&key, batch(&split, 1)),
        Admission::RateLimited
    ));
    gw.wait_idle();

    // ShedOldest evictions refund too: an evicted request served nothing,
    // so its tokens go back to the bucket.
    let gw = Gateway::builder()
        .workers(1)
        .queue_capacity(1)
        .policy(OverloadPolicy::ShedOldest)
        .rate_limit(
            "iris",
            RateLimit {
                burst: 20.0,
                samples_per_sec: 0.0,
            },
        )
        .build();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();
    gw.pause_dispatch();
    let first = gw
        .try_submit_classify(&key, batch(&split, 10))
        .expect_admitted();
    // Charges the last 10 tokens, evicts `first`, refunds its 10.
    let second = gw
        .try_submit_classify(&key, batch(&split, 10))
        .expect_admitted();
    assert_eq!(first.wait(), Err(GatewayError::Shed));
    gw.resume_dispatch();
    assert!(second.wait().is_ok());
    gw.wait_idle();
    // Without the eviction refund the bucket would be empty here.
    assert!(gw
        .try_submit_classify(&key, batch(&split, 10))
        .is_admitted());
    assert!(matches!(
        gw.try_submit_classify(&key, batch(&split, 1)),
        Admission::RateLimited
    ));
    gw.wait_idle();
}

#[test]
fn handle_edge_cases_poll_wait_and_empty_batches() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();

    // Empty batch: admitted and already resolved, no ring space used.
    let h = gw.try_submit_forward(&key, Vec::new()).expect_admitted();
    assert_eq!(h.stage(), RequestStage::Done);
    assert_eq!(h.wait().unwrap(), Vec::<Vec<u32>>::new());

    // Wait after the pool drained; then double-wait and poll-after-wait
    // return the cached result (unlike the single-consumer serve handles).
    let xs = batch(&split, 9);
    let h = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    gw.wait_idle();
    assert!(h.is_done());
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(h.wait().unwrap(), direct);
    assert_eq!(h.wait().unwrap(), direct);
    assert_eq!(h.poll(), Some(Ok(direct.clone())));
    assert_eq!(h.stage(), RequestStage::Done);
}

#[test]
fn panicking_request_fails_only_its_own_handle() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    // posit<8,0> next to a model whose weights panic the datapath is hard
    // to fabricate; instead panic via the engine seam underneath the
    // gateway and check the gateway metrics keep serving.
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let poisoned = gw
        .engine()
        .submit_job::<usize, _>(|| panic!("injected failure"))
        .unwrap();
    let xs = batch(&split, 12);
    let healthy = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    assert_eq!(poisoned.wait(), Err(dp_serve::JobError::Panicked));
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(healthy.wait().unwrap(), direct);
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0);
    assert_eq!(gw.engine().stats().panics, 1);
}

#[test]
fn shutdown_drains_every_admitted_request() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 20);
    let handles: Vec<_> = (0..4)
        .map(|_| gw.try_submit_forward(&key, xs.clone()).expect_admitted())
        .collect();
    gw.shutdown();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    for h in handles {
        assert_eq!(h.wait().unwrap(), direct);
    }
}

#[test]
fn snapshot_json_renders_live_traffic() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();
    let h = gw
        .try_submit_classify(&key, batch(&split, 16))
        .expect_admitted();
    h.wait().unwrap();
    gw.wait_idle();
    let json = gw.snapshot().to_json();
    assert!(json.contains("\"submitted\": 1"), "{json}");
    assert!(json.contains("\"completed\": 1"), "{json}");
    assert!(json.contains(&format!("\"key\": \"{key}\"")), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

// ---- request-lifecycle robustness (deadlines, cancel, degraded) --------

#[test]
fn expired_request_handle_resolves_promptly_without_spinning() {
    use std::time::{Duration, Instant};
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();

    // Hold dispatch so the deadline is unambiguously in the past by the
    // time the dispatcher pops the entry.
    gw.pause_dispatch();
    let h = gw
        .try_submit_forward_opts(
            &key,
            batch(&split, 4),
            dp_gateway::SubmitOptions::new().deadline(Instant::now()),
        )
        .expect_admitted();
    assert_eq!(h.poll(), None, "still queued while dispatch is paused");
    gw.resume_dispatch();

    // The dispatcher expires the entry; the cached verdict must surface
    // through non-blocking poll() within a bounded number of attempts —
    // a regression here spins forever exactly like the shed-handle bug.
    let t0 = Instant::now();
    let verdict = loop {
        if let Some(v) = h.poll() {
            break v;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "expired handle never resolved"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(verdict, Err(GatewayError::DeadlineExceeded));
    // Repeated polls and a blocking wait return the same cached verdict.
    assert_eq!(h.poll(), Some(Err(GatewayError::DeadlineExceeded)));
    assert_eq!(h.wait(), Err(GatewayError::DeadlineExceeded));
    assert_eq!(h.stage(), RequestStage::Done);

    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.per_model[0].expired, 1);
    assert_eq!(snap.completed, 0);
}

#[test]
fn expired_requests_refund_their_rate_limit_tokens() {
    use std::time::Instant;
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .queue_capacity(8)
        .rate_limit(
            "iris",
            RateLimit {
                burst: 8.0,
                samples_per_sec: 0.0,
            },
        )
        .build();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();

    gw.pause_dispatch();
    let doomed = gw
        .try_submit_forward_opts(
            &key,
            batch(&split, 4),
            dp_gateway::SubmitOptions::new().deadline(Instant::now()),
        )
        .expect_admitted();
    gw.resume_dispatch();
    assert_eq!(doomed.wait(), Err(GatewayError::DeadlineExceeded));

    // All 4 of the expired request's tokens are back: an 8-sample probe
    // fits the non-refilling 8-token bucket only if the refund happened.
    let probe = gw.try_submit_forward(&key, batch(&split, 8));
    assert!(probe.is_admitted(), "expiry must refund its tokens");
    probe.expect_admitted().wait().unwrap();
}

#[test]
fn wait_timeout_times_out_while_queued_then_delivers_after_resume() {
    use std::time::Duration;
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 8);

    gw.pause_dispatch();
    let h = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    assert_eq!(
        h.wait_timeout(Duration::from_millis(50)),
        None,
        "queued request must time out, not block"
    );
    gw.resume_dispatch();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(
        h.wait_timeout(Duration::from_secs(10)),
        Some(Ok(direct.clone()))
    );
    // The resolution is cached: a second (blocking) wait sees it too.
    assert_eq!(h.wait().unwrap(), direct);
}

#[test]
fn cancelling_a_queued_request_resolves_immediately_and_counts_once() {
    let (mlp, split) = trained_iris();
    let gw = small_gateway(OverloadPolicy::ShedNewest);
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();

    gw.pause_dispatch();
    let h = gw
        .try_submit_forward(&key, batch(&split, 4))
        .expect_admitted();
    h.cancel();
    // The verdict is available before the dispatcher even sees the entry.
    assert_eq!(h.poll(), Some(Err(GatewayError::Cancelled)));
    gw.resume_dispatch();
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.cancelled, 1, "cancel is counted exactly once");
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.failed, 0);
}

#[test]
fn panic_budget_degrades_admission_and_reset_restores_it() {
    use std::time::{Duration, Instant};
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .chunk_samples(4)
        .queue_capacity(8)
        .panic_budget(dp_serve::PanicBudget {
            max_panics: 1,
            window: Duration::from_secs(30),
        })
        .build();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q).unwrap();

    // Two direct pool panics blow the budget of one.
    for _ in 0..2 {
        let h = gw
            .engine()
            .submit_job::<usize, _>(|| panic!("boom"))
            .unwrap();
        assert!(h.wait().is_err());
    }
    let t0 = Instant::now();
    while !gw.is_degraded() && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(gw.is_degraded());
    assert!(matches!(
        gw.try_submit_forward(&key, batch(&split, 4)),
        Admission::Degraded
    ));
    let snap = gw.snapshot();
    assert!(snap.degraded);
    assert_eq!(snap.rejected_degraded, 1);

    // Operator reset: admission works again end to end.
    gw.reset_degraded();
    assert!(!gw.is_degraded());
    let h = gw
        .try_submit_forward(&key, batch(&split, 4))
        .expect_admitted();
    h.wait().unwrap();
}

// ---- close(&self) seam: snapshot after close is final ------------------

#[test]
fn snapshot_after_close_reports_final_conserved_counters() {
    use std::time::Instant;
    // The network front end scrapes /metrics after draining; that scrape
    // must see *final* counters, not a torn view racing the dispatcher
    // join or late chunk completions. close(&self) works through an Arc
    // (front ends share the gateway across threads).
    let (mlp, split) = trained_iris();
    let gw = Arc::new(small_gateway(OverloadPolicy::ShedNewest));
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let bogus = ModelKey::new("nope", mixed_formats()[0].to_string());

    // Mixed traffic: completions, an expiry, and typed rejections.
    let handles: Vec<_> = (0..3)
        .map(|_| {
            gw.try_submit_forward(&key, batch(&split, 8))
                .expect_admitted()
        })
        .collect();
    gw.pause_dispatch();
    let doomed = gw
        .try_submit_forward_opts(
            &key,
            batch(&split, 4),
            dp_gateway::SubmitOptions::new().deadline(Instant::now()),
        )
        .expect_admitted();
    gw.resume_dispatch();
    assert!(matches!(
        gw.try_submit_classify(&bogus, batch(&split, 1)),
        Admission::ModelUnknown(_)
    ));

    // Close from another thread, through &self — no handle is waited
    // first, so the drain itself must resolve everything in flight.
    let closer = {
        let gw = Arc::clone(&gw);
        std::thread::spawn(move || gw.close())
    };
    closer.join().unwrap();

    // Post-close admission is a typed verdict, and counted.
    assert!(matches!(
        gw.try_submit_forward(&key, batch(&split, 4)),
        Admission::Closed
    ));

    let snap = gw.snapshot();
    // Admission-side conservation.
    assert_eq!(
        snap.submitted,
        snap.admitted
            + snap.shed_queue_full
            + snap.rate_limited
            + snap.model_unknown
            + snap.unsupported
            + snap.rejected_closed
            + snap.rejected_degraded,
        "admission conservation broken: {}",
        snap.to_json()
    );
    // Outcome-side conservation: every admitted request resolved.
    assert_eq!(
        snap.admitted,
        snap.completed
            + snap.failed
            + snap.shed_evicted
            + snap.deadline_exceeded
            + snap.cancelled
            + snap.dropped_closed
            + snap.drain_aborted,
        "outcome conservation broken: {}",
        snap.to_json()
    );
    assert_eq!(snap.submitted, 6);
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.model_unknown, 1);
    assert_eq!(snap.rejected_closed, 1);

    // Counters are *final*: a later snapshot is identical.
    let again = gw.snapshot();
    assert_eq!(snap.to_json(), again.to_json());

    // Handles survive close and carry their cached verdicts.
    let direct: Vec<Vec<u32>> = batch(&split, 8).iter().map(|x| q.forward_bits(x)).collect();
    for h in handles {
        assert_eq!(h.wait().unwrap(), direct);
    }
    assert_eq!(doomed.wait(), Err(GatewayError::DeadlineExceeded));
}
