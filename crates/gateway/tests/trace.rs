//! Flight-recorder conservation tests: every request that opens a trace
//! context resolves to **exactly one** terminal event, and the per-kind
//! terminal counts equal the Prometheus counters the gateway already
//! exports — the recorder and the metrics must never tell different
//! stories about the same traffic.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_gateway::{Admission, Gateway, OverloadPolicy, SubmitOptions, TerminalKind, TraceConfig};
use dp_posit::PositFormat;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(10);

fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(31).split(50, 31).normalized();
    let mut mlp = Mlp::new(&[4, 8, 3], 31);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.02,
            seed: 31,
        },
    );
    (mlp, split)
}

fn quantized(mlp: &Mlp) -> QuantizedMlp {
    QuantizedMlp::quantize(mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()))
}

fn batch(split: &dp_datasets::TrainTest, n: usize) -> Vec<Vec<f32>> {
    split
        .test
        .features
        .iter()
        .cycle()
        .take(n)
        .cloned()
        .collect()
}

#[test]
fn trace_conservation_terminals_partition_and_match_prometheus_counters() {
    // Mixed outcomes in one run: completed, shed (ring full), expired
    // (deadline passed while queued), cancelled (while queued) and the
    // inline empty-batch completion. Every context must resolve exactly
    // once, with kind counts equal to the exported counters.
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .queue_capacity(8)
        .policy(OverloadPolicy::ShedNewest)
        .trace(TraceConfig::every_request())
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    let xs = batch(&split, 4);

    gw.pause_dispatch();
    let cap = gw.queue_capacity();
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..2 * cap {
        let opts = if i == 1 || i == 2 {
            // Already-dead deadline: expires at dispatcher pick-up.
            SubmitOptions::new().deadline(Instant::now())
        } else {
            SubmitOptions::new()
        };
        match gw.try_submit_forward_opts(&key, xs.clone(), opts) {
            Admission::Admitted(h) => admitted.push(h),
            Admission::QueueFull => shed += 1,
            other => panic!("unexpected verdict: {other:?}"),
        }
    }
    assert_eq!(admitted.len(), cap);
    assert_eq!(shed, cap);
    admitted[4].cancel();
    admitted[5].cancel();
    // Empty batch: resolves inline, still one context + one terminal.
    gw.try_submit_forward(&key, Vec::new()).expect_admitted();
    gw.resume_dispatch();
    for h in &admitted {
        h.wait_timeout(WAIT)
            .expect("no admitted handle may hang")
            .ok();
    }
    // Settle the gateway so both counters and recorder stats are final.
    gw.close();

    let snap = gw.snapshot();
    let stats = gw.recorder().expect("tracing is on").stats();

    // Contexts open for everything that passed the pre-admission screens:
    // the admitted requests, the shed-at-the-ring requests, and the
    // inline empty batch.
    assert_eq!(stats.begun, (cap + shed + 1) as u64);
    // Conservation: exactly one terminal per context, none duplicated.
    assert_eq!(stats.terminals_total(), stats.begun);
    assert_eq!(stats.dup_terminals, 0);
    // The kind partition equals the Prometheus counters.
    assert_eq!(stats.terminal(TerminalKind::Completed), snap.completed);
    assert_eq!(
        stats.terminal(TerminalKind::Expired),
        snap.deadline_exceeded
    );
    assert_eq!(stats.terminal(TerminalKind::Cancelled), snap.cancelled);
    assert_eq!(
        stats.terminal(TerminalKind::Shed),
        snap.shed_queue_full + snap.shed_evicted
    );
    assert_eq!(stats.terminal(TerminalKind::Failed), snap.failed);
    assert_eq!(
        stats.terminal(TerminalKind::Closed),
        snap.rejected_closed + snap.dropped_closed
    );
    assert_eq!(snap.deadline_exceeded, 2);
    assert_eq!(snap.cancelled, 2);
    assert_eq!(snap.shed_queue_full, cap as u64);

    // Published timelines are monotone through every reached stage.
    let timelines = gw.recorder().unwrap().timelines();
    assert!(!timelines.is_empty());
    let mut saw_complete = false;
    for t in &timelines {
        let stages = t.stages();
        for w in stages.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "stage {} ({}) after {} ({}) in {:?}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1,
                t
            );
        }
        if t.terminal == TerminalKind::Completed && t.chunks_total > 0 {
            saw_complete = true;
            assert_eq!(t.chunks_done, t.chunks_total);
            assert!(t.admitted_ns <= t.dispatched_ns);
            assert!(t.dispatched_ns <= t.first_chunk_ns);
            assert!(t.first_chunk_ns <= t.resolved_ns);
        }
    }
    assert!(
        saw_complete,
        "at least one complete timeline: {timelines:?}"
    );
}

#[test]
fn sampled_out_requests_still_count_terminals_but_publish_nothing() {
    // sample_every = 0 turns publication off entirely (no slow threshold
    // either), yet conservation accounting still runs: the terminal
    // counters are live even when no timeline is retained.
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .trace(TraceConfig {
            sample_every: 0,
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        })
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    for _ in 0..5 {
        gw.try_submit_forward(&key, batch(&split, 4))
            .expect_admitted()
            .wait_timeout(WAIT)
            .expect("resolves")
            .expect("completes");
    }
    gw.close();
    let stats = gw.recorder().unwrap().stats();
    assert_eq!(stats.begun, 5);
    assert_eq!(stats.terminal(TerminalKind::Completed), 5);
    assert_eq!(stats.published, 0);
    assert!(gw.recorder().unwrap().timelines().is_empty());
}

#[test]
fn unregister_prunes_the_per_model_metrics_row() {
    // Regression (gateway-level): `registry().remove` left the per-model
    // metrics row behind forever; `Gateway::unregister` prunes it.
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder().workers(1).chunk_samples(4).build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    gw.try_submit_forward(&key, batch(&split, 4))
        .expect_admitted()
        .wait_timeout(WAIT)
        .expect("resolves")
        .expect("completes");
    assert_eq!(gw.snapshot().per_model.len(), 1);

    assert!(gw.unregister(&key));
    assert!(!gw.unregister(&key), "second unregister is a no-op");
    assert!(gw.snapshot().per_model.is_empty());
    assert!(matches!(
        gw.try_submit_forward(&key, batch(&split, 1)),
        Admission::ModelUnknown(_)
    ));
    // The rejected probe must not resurrect the row.
    assert!(gw.snapshot().per_model.is_empty());
}

#[test]
fn tracing_off_means_no_recorder_and_no_context_allocation() {
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .chunk_samples(4)
        .trace(TraceConfig::off())
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    assert!(gw.recorder().is_none());
    gw.try_submit_forward(&key, batch(&split, 4))
        .expect_admitted()
        .wait_timeout(WAIT)
        .expect("resolves")
        .expect("completes");
    let snap = gw.snapshot();
    assert_eq!(snap.completed, 1);
}

#[test]
fn wire_trace_ids_flow_into_timelines_and_generated_ids_are_flagged() {
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .chunk_samples(4)
        .trace(TraceConfig::every_request())
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    // A wire-style submission carries its own request id.
    let received = Instant::now();
    gw.try_submit_forward_opts(
        &key,
        batch(&split, 4),
        SubmitOptions::new().traced_from(42, received),
    )
    .expect_admitted()
    .wait_timeout(WAIT)
    .expect("resolves")
    .expect("completes");
    // An in-process submission gets a generated id with the high bit set.
    gw.try_submit_forward(&key, batch(&split, 4))
        .expect_admitted()
        .wait_timeout(WAIT)
        .expect("resolves")
        .expect("completes");
    gw.close();

    let timelines = gw.recorder().unwrap().timelines();
    assert_eq!(timelines.len(), 2);
    let ids: Vec<u64> = timelines.iter().map(|t| t.req_id).collect();
    assert!(ids.contains(&42), "{ids:?}");
    assert!(
        ids.iter().any(|id| id & (1 << 63) != 0),
        "generated ids carry the high bit: {ids:?}"
    );
    let wire = timelines.iter().find(|t| t.req_id == 42).unwrap();
    assert!(
        wire.received_ns > 0 && wire.received_ns <= wire.admitted_ns,
        "wire timelines start at the receive stamp: {wire:?}"
    );
}
