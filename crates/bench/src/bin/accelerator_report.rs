//! Extension: whole-accelerator synthesis plan for each paper workload
//! (paper Fig. 1 scaled out: one EMAC per neuron with local memories).
//!
//! Output: `results/accelerator_report.csv`.

use dp_bench::{render_table, write_csv};
use dp_fixed::FixedFormat;
use dp_hw::{plan_accelerator, Calib, FormatSpec};
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn main() {
    let calib = Calib::default();
    let topologies: [(&str, Vec<u32>); 3] = [
        ("WBC 30-16-2", vec![30, 16, 2]),
        ("Iris 4-16-3", vec![4, 16, 3]),
        ("Mushroom 117-24-2", vec![117, 24, 2]),
    ];
    let specs = [
        FormatSpec::Posit(PositFormat::new(8, 0).unwrap()),
        FormatSpec::Posit(PositFormat::new(8, 2).unwrap()),
        FormatSpec::Float(FloatFormat::new(4, 3).unwrap()),
        FormatSpec::Fixed(FixedFormat::new(8, 6).unwrap()),
    ];
    let mut rows = Vec::new();
    println!("== Deep Positron accelerator plans (Virtex-7 model) ==\n");
    for (name, dims) in &topologies {
        for &spec in &specs {
            let r = plan_accelerator(spec, dims, calib);
            println!("{name}: {r}");
            rows.push(vec![
                name.to_string(),
                spec.label(),
                r.luts.to_string(),
                r.ffs.to_string(),
                r.dsps.to_string(),
                format!("{:.1}", r.weight_memory_bits as f64 / 1000.0),
                format!("{:.1}", r.fmax_hz / 1e6),
                format!("{:.3}", r.latency_ns() / 1000.0),
                format!("{:.1}", r.throughput_per_s() / 1e3),
                format!("{:.2}", r.energy_per_inference_pj / 1000.0),
                format!("{:.3e}", r.edp()),
            ]);
        }
        println!();
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "format",
                "luts",
                "ffs",
                "dsps",
                "wmem_kb",
                "fmax_mhz",
                "latency_us",
                "kinf_per_s",
                "nj_per_inf",
                "edp_js"
            ],
            &rows
        )
    );
    write_csv(
        "results/accelerator_report.csv",
        &[
            "workload",
            "format",
            "luts",
            "ffs",
            "dsps",
            "wmem_kb",
            "fmax_mhz",
            "latency_us",
            "kinf_per_s",
            "nj_per_inf",
            "edp_js",
        ],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/accelerator_report.csv");
}
