//! Regenerates paper Fig. 7: bit width n vs energy-delay product for the
//! three EMAC families (fixed point wins at every width).
//!
//! Output: `results/fig7_edp.csv` + an ASCII plot.

use dp_bench::{render_table, write_csv, Ascii};
use dp_hw::{report, representative, Calib, Family};

fn main() {
    let k = 128;
    let calib = Calib::default();
    let mut rows = Vec::new();
    let mut series: Vec<(Family, Vec<(f64, f64)>)> = vec![
        (Family::Float, Vec::new()),
        (Family::Fixed, Vec::new()),
        (Family::Posit, Vec::new()),
    ];
    for n in 5..=8u32 {
        for (fam, pts) in series.iter_mut() {
            let spec = representative(n, *fam);
            let r = report(spec, k, calib);
            rows.push(vec![
                spec.label(),
                n.to_string(),
                format!("{:.3e}", r.edp),
                format!("{:.2}", r.energy_per_mac_pj),
                format!("{:.1}", r.fmax_hz / 1e6),
            ]);
            pts.push((n as f64, r.edp));
        }
    }
    println!("== Fig. 7: n vs energy-delay product (k = {k} MAC dot product) ==\n");
    println!(
        "{}",
        render_table(
            &["format", "n", "edp_js", "energy_per_mac_pj", "fmax_mhz"],
            &rows
        )
    );
    let plot = Ascii::new(48, 14, true)
        .series('f', "float", series[0].1.clone())
        .series('x', "fixed", series[1].1.clone())
        .series('p', "posit", series[2].1.clone());
    println!("{}", plot.render());
    println!("paper shape: fixed lowest EDP at every n; float ≈ posit.");
    write_csv(
        "results/fig7_edp.csv",
        &["format", "n", "edp_js", "energy_per_mac_pj", "fmax_mhz"],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/fig7_edp.csv");
}
