//! Regenerates paper Fig. 6: dynamic range vs maximum operating frequency
//! for the fixed / float / posit EMACs on the synthesis model.
//!
//! Output: `results/fig6_freq_vs_dynrange.csv` + an ASCII plot.

use dp_bench::{render_table, write_csv, Ascii};
use dp_hw::{paper_grid, report, Calib, Family};

fn main() {
    let k = 128; // dot-product length the paper-scale layers use
    let calib = Calib::default();
    let mut rows = Vec::new();
    let mut series: Vec<(Family, Vec<(f64, f64)>)> = vec![
        (Family::Float, Vec::new()),
        (Family::Fixed, Vec::new()),
        (Family::Posit, Vec::new()),
    ];
    for n in 5..=8u32 {
        for spec in paper_grid(n) {
            let r = report(spec, k, calib);
            rows.push(vec![
                spec.label(),
                format!("{n}"),
                format!("{:.3}", r.dynamic_range_log10),
                format!("{:.1}", r.fmax_hz / 1e6),
                format!("{}", r.luts),
            ]);
            series
                .iter_mut()
                .find(|(f, _)| *f == spec.family())
                .unwrap()
                .1
                .push((r.dynamic_range_log10, r.fmax_hz));
        }
    }
    println!("== Fig. 6: dynamic range vs max operating frequency (k = {k}) ==\n");
    println!(
        "{}",
        render_table(&["format", "n", "dyn_range_dec", "fmax_mhz", "luts"], &rows)
    );
    let plot = Ascii::new(64, 16, false)
        .series('f', "float", series[0].1.clone())
        .series('x', "fixed", series[1].1.clone())
        .series('p', "posit", series[2].1.clone());
    println!("{}", plot.render());
    write_csv(
        "results/fig6_freq_vs_dynrange.csv",
        &["format", "n", "dyn_range_dec", "fmax_mhz", "luts"],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/fig6_freq_vs_dynrange.csv");
}
