//! Regenerates paper Table II: Deep Positron accuracy on the three
//! low-dimensional datasets with 8-bit EMACs (best posit / float / fixed
//! configuration per cell) against the 32-bit float baseline.
//!
//! Output: `results/table2_accuracy.csv` + a formatted table.

use deep_positron::experiments::{paper_tasks, table2};
use dp_bench::{render_table, write_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!(
        "training 32-bit float models ({} schedule)...",
        if quick { "quick" } else { "full" }
    );
    let tasks = paper_tasks(quick, 42);
    let rows = table2(&tasks);
    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.dataset.clone(),
            r.inference_size.to_string(),
            format!("{:.2}% ({})", 100.0 * r.posit.accuracy, r.posit.format),
            format!("{:.2}% ({})", 100.0 * r.float.accuracy, r.float.format),
            format!("{:.2}% ({})", 100.0 * r.fixed.accuracy, r.fixed.format),
            format!("{:.2}%", 100.0 * r.f32_accuracy),
        ]);
    }
    println!("\n== Table II: Deep Positron accuracy with 8-bit EMACs ==\n");
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "inference_size",
                "posit8",
                "float8",
                "fixed8",
                "float32"
            ],
            &table
        )
    );
    println!("paper reference (real UCI data):");
    println!("  WBC:      posit 85.89%, float 77.4%, fixed 57.8%, f32 90.1%");
    println!("  Iris:     posit 98%,    float 96%,   fixed 92%,   f32 98%");
    println!("  Mushroom: posit 96.4%,  float 96.4%, fixed 95.9%, f32 96.8%");
    write_csv(
        "results/table2_accuracy.csv",
        &[
            "dataset",
            "inference_size",
            "posit8",
            "posit8_acc",
            "float8",
            "float8_acc",
            "fixed8",
            "fixed8_acc",
            "float32_acc",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.inference_size.to_string(),
                    r.posit.format.to_string(),
                    format!("{:.4}", r.posit.accuracy),
                    r.float.format.to_string(),
                    format!("{:.4}", r.float.accuracy),
                    r.fixed.format.to_string(),
                    format!("{:.4}", r.fixed.accuracy),
                    format!("{:.4}", r.f32_accuracy),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
    println!("\nwrote results/table2_accuracy.csv");
}
