//! Extension experiment: Table II with a *tuned* fixed-point binary point
//! (sweeping q instead of the paper's pure-fractional Q1.(n−1)).
//!
//! Finding: most of the paper's fixed-point accuracy gap is an artifact of
//! the binary-point choice, not of fixed-point arithmetic itself — though
//! the tuned format still needs its point placed per-task, which posits
//! avoid thanks to tapered precision.
//!
//! Output: `results/table2_tuned_fixed.csv`.

use deep_positron::experiments::{best_config_on, best_config_tuned, paper_tasks};
use dp_bench::{render_table, write_csv};
use dp_hw::Family;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let limit = usize::MAX;
    eprintln!("training 32-bit float models...");
    let tasks = paper_tasks(quick, 42);
    let mut rows = Vec::new();
    for t in &tasks {
        let paper_fixed = best_config_on(t, Family::Fixed, 8, limit);
        let tuned_fixed = best_config_tuned(t, Family::Fixed, 8, limit);
        let posit = best_config_on(t, Family::Posit, 8, limit);
        rows.push(vec![
            t.name.clone(),
            format!(
                "{:.2}% ({})",
                100.0 * paper_fixed.accuracy,
                paper_fixed.format
            ),
            format!(
                "{:.2}% ({})",
                100.0 * tuned_fixed.accuracy,
                tuned_fixed.format
            ),
            format!("{:.2}% ({})", 100.0 * posit.accuracy, posit.format),
            format!("{:.2}%", 100.0 * t.f32_test_accuracy),
        ]);
    }
    println!("== Extension: paper fixed (Q1.7) vs tuned binary point at 8 bits ==\n");
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "fixed Q1.7",
                "fixed tuned-q",
                "posit8",
                "float32"
            ],
            &rows
        )
    );
    write_csv(
        "results/table2_tuned_fixed.csv",
        &["dataset", "fixed_q17", "fixed_tuned", "posit8", "float32"],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/table2_tuned_fixed.csv");
}
