//! Developer utility: quick f32-baseline probe of the synthetic datasets'
//! difficulty (used while calibrating the generators to the paper's
//! Table II baselines; not part of the figure set).

use deep_positron::experiments::paper_tasks;

fn main() {
    for seed in [42u64, 7, 123] {
        println!("seed {seed}:");
        for t in paper_tasks(false, seed) {
            println!(
                "  {:<26} f32 test accuracy {:.2}%  (train {} / test {})",
                t.name,
                100.0 * t.f32_test_accuracy,
                t.split.train.len(),
                t.split.test.len(),
            );
        }
    }
}
