//! Extension experiment (DESIGN.md E10): how much accuracy does the
//! EMAC's *exact* accumulation buy over an ordinary per-op-rounding MAC?
//! This quantifies the paper's §III-A motivation ("rounding or truncation
//! within an EMAC unit is delayed until every product has been
//! accumulated").
//!
//! Output: `results/ablation_exact_vs_inexact.csv`.

use deep_positron::ablation::compare_exact_vs_inexact;
use deep_positron::experiments::{candidate_formats, paper_tasks};
use deep_positron::QuantizedMlp;
use dp_bench::{render_table, write_csv};
use dp_hw::Family;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let limit = if quick { 300 } else { 1000 };
    eprintln!("training 32-bit float models...");
    let tasks = paper_tasks(quick, 42);
    let mut rows = Vec::new();
    for task in &tasks {
        for n in [5u32, 6, 7, 8] {
            for family in [Family::Posit, Family::Float, Family::Fixed] {
                for format in candidate_formats(family, n) {
                    let q = QuantizedMlp::quantize(&task.mlp, format);
                    let r = compare_exact_vs_inexact(&q, &task.split.test, limit);
                    rows.push(vec![
                        task.name.clone(),
                        format.to_string(),
                        format!("{:.4}", r.exact_accuracy),
                        format!("{:.4}", r.inexact_accuracy),
                        format!("{:+.2}", r.emac_gain_pct()),
                    ]);
                }
            }
        }
    }
    println!("== Ablation: exact (EMAC) vs per-op-rounding MAC accuracy ==\n");
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "format",
                "exact_acc",
                "inexact_acc",
                "emac_gain_pp"
            ],
            &rows
        )
    );
    let gains: Vec<f64> = rows.iter().map(|r| r[4].parse::<f64>().unwrap()).collect();
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    let max = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "mean EMAC gain {mean:+.2} pp; max {max:+.2} pp across {} configs",
        gains.len()
    );
    write_csv(
        "results/ablation_exact_vs_inexact.csv",
        &[
            "dataset",
            "format",
            "exact_acc",
            "inexact_acc",
            "emac_gain_pp",
        ],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/ablation_exact_vs_inexact.csv");
}
