//! Regenerates paper Fig. 9: average accuracy degradation (vs the 32-bit
//! float baseline, best config per dataset) against energy-delay product,
//! one point per bit width × format family.
//!
//! Output: `results/fig9_acc_vs_edp.csv` + an ASCII plot.

use deep_positron::experiments::{fig9_on, paper_tasks};
use dp_bench::{render_table, write_csv, Ascii};
use dp_hw::Family;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let limit = if quick { 400 } else { usize::MAX };
    eprintln!("training 32-bit float models...");
    let tasks = paper_tasks(quick, 42);
    eprintln!("sweeping formats n=5..8 (this evaluates every config on every test set)...");
    let points = fig9_on(&tasks, limit);
    let mut rows = Vec::new();
    type Series = (Family, char, Vec<(f64, f64)>);
    let mut series: Vec<Series> = vec![
        (Family::Fixed, 'x', Vec::new()),
        (Family::Float, 'f', Vec::new()),
        (Family::Posit, 'p', Vec::new()),
    ];
    for p in &points {
        rows.push(vec![
            format!("{:?}", p.family),
            p.n.to_string(),
            format!("{:.3}", p.avg_degradation_pct),
            format!("{:.3e}", p.edp),
        ]);
        series
            .iter_mut()
            .find(|(f, _, _)| *f == p.family)
            .unwrap()
            .2
            .push((p.avg_degradation_pct, p.edp));
    }
    println!("== Fig. 9: avg accuracy degradation vs EDP (points labelled by n) ==\n");
    println!(
        "{}",
        render_table(&["family", "n", "avg_degradation_pct", "edp_js"], &rows)
    );
    let plot = Ascii::new(56, 14, true)
        .series('x', "fixed", series[0].2.clone())
        .series('f', "float", series[1].2.clone())
        .series('p', "posit", series[2].2.clone());
    println!("{}", plot.render());
    println!("paper shape: posit achieves the lowest degradation at moderate EDP;");
    println!("fixed has the lowest EDP but the highest degradation.");
    write_csv(
        "results/fig9_acc_vs_edp.csv",
        &["family", "n", "avg_degradation_pct", "edp_js"],
        &rows,
    )
    .expect("write csv");
    println!("wrote results/fig9_acc_vs_edp.csv");
}
