//! Regenerates paper Fig. 8: bit width n vs LUT utilization for the three
//! EMAC families (posit generally consumes the most resources).
//!
//! Output: `results/fig8_luts.csv` + an ASCII plot.

use dp_bench::{render_table, write_csv, Ascii};
use dp_hw::{emac_netlist, paper_grid, representative, Calib, Family};

fn main() {
    let k = 128;
    let calib = Calib::default();
    let mut rows = Vec::new();
    let mut series: Vec<(Family, Vec<(f64, f64)>)> = vec![
        (Family::Float, Vec::new()),
        (Family::Fixed, Vec::new()),
        (Family::Posit, Vec::new()),
    ];
    for n in 5..=8u32 {
        for (fam, pts) in series.iter_mut() {
            let spec = representative(n, *fam);
            let nl = emac_netlist(spec, k, calib);
            rows.push(vec![
                spec.label(),
                n.to_string(),
                nl.luts().to_string(),
                nl.ffs().to_string(),
                nl.dsps().to_string(),
            ]);
            pts.push((n as f64, nl.luts() as f64));
        }
    }
    println!("== Fig. 8: n vs LUT utilization (representative configs) ==\n");
    println!(
        "{}",
        render_table(&["format", "n", "luts", "ffs", "dsps"], &rows)
    );
    let plot = Ascii::new(48, 14, false)
        .series('f', "float", series[0].1.clone())
        .series('x', "fixed", series[1].1.clone())
        .series('p', "posit", series[2].1.clone());
    println!("{}", plot.render());

    // Full-grid dump (every es/we config) for the record.
    let mut grid_rows = Vec::new();
    for n in 5..=8u32 {
        for spec in paper_grid(n) {
            let nl = emac_netlist(spec, k, calib);
            grid_rows.push(vec![spec.label(), n.to_string(), nl.luts().to_string()]);
        }
    }
    write_csv(
        "results/fig8_luts.csv",
        &["format", "n", "luts"],
        &grid_rows,
    )
    .expect("write csv");
    println!("paper shape: posit > float > fixed at every n.");
    println!("wrote results/fig8_luts.csv");
}
