//! Regenerates paper Table I: interpretation of the posit regime
//! run-length code.

use dp_bench::render_table;
use dp_posit::{decode, PositFormat};

fn main() {
    // Embed each regime string in a 6-bit es=0 posit body and decode.
    let cases: [(&str, u32); 6] = [
        ("0001", 0b0_00010),
        ("001", 0b0_00100),
        ("01", 0b0_01000),
        ("10", 0b0_10000),
        ("110", 0b0_11000),
        ("1110", 0b0_11100),
    ];
    let fmt = PositFormat::new(6, 0).unwrap();
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|&(bits, pattern)| {
            let k = dp_posit::decode::regime(fmt, pattern).unwrap();
            let value = dp_posit::convert::to_f64(fmt, pattern);
            vec![bits.to_string(), k.to_string(), format!("{value}")]
        })
        .collect();
    println!("== Table I: regime interpretation (decoded by dp-posit) ==\n");
    println!(
        "{}",
        render_table(&["binary", "regime k", "value (p6e0)"], &rows)
    );
    println!("paper: 0001→-3, 001→-2, 01→-1, 10→0, 110→1, 1110→2");
    let _ = decode(fmt, 0); // keep the import obviously exercised
}
