//! Extension: decimal accuracy of the 8-bit formats across the DNN
//! operating range — the representational-accuracy argument behind the
//! paper's §I/"posits provide higher accuracy" and Fig. 2.
//!
//! Output: `results/decimal_accuracy.csv`.

use dp_bench::accuracy::mean_decimal_accuracy;
use dp_bench::{render_table, write_csv};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn main() {
    // Ranges: the DNN "sweet spot" (weights/activations), a wide range,
    // and a tiny-magnitude range (gradients / small products).
    let ranges: [(&str, f64, f64); 3] = [
        ("dnn [0.01, 1]", 0.01, 1.0),
        ("wide [1e-4, 1e4]", 1e-4, 1e4),
        ("tiny [1e-6, 1e-2]", 1e-6, 1e-2),
    ];
    let mut rows = Vec::new();
    let mut eval = |label: String, q: Box<dyn Fn(f64) -> f64>| {
        let cells: Vec<String> = ranges
            .iter()
            .map(|&(_, lo, hi)| format!("{:.2}", mean_decimal_accuracy(&q, lo, hi, 2000, 6.0)))
            .collect();
        rows.push(std::iter::once(label).chain(cells).collect::<Vec<String>>());
    };
    for es in 0..=2u32 {
        let f = PositFormat::new(8, es).unwrap();
        eval(
            f.to_string(),
            Box::new(move |v| dp_posit::convert::to_f64(f, dp_posit::convert::from_f64(f, v))),
        );
    }
    for we in 2..=5u32 {
        let f = FloatFormat::new(we, 7 - we).unwrap();
        eval(
            f.to_string(),
            Box::new(move |v| {
                dp_minifloat::convert::to_f64(f, dp_minifloat::convert::from_f64_saturating(f, v))
            }),
        );
    }
    for q in [4u32, 6, 7] {
        let f = FixedFormat::new(8, q).unwrap();
        eval(f.to_string(), Box::new(move |v| f.to_f64(f.from_f64(v))));
    }
    println!("== Mean decimal accuracy (digits) of 8-bit formats ==\n");
    let header = ["format", ranges[0].0, ranges[1].0, ranges[2].0];
    println!("{}", render_table(&header, &rows));
    println!("posit's tapered precision concentrates digits near ±1 (the DNN");
    println!("range, paper Fig. 2) while still covering the wide range.");
    write_csv("results/decimal_accuracy.csv", &header, &rows).expect("write csv");
    println!("wrote results/decimal_accuracy.csv");
}
