//! Regenerates paper Fig. 2: (a) the value distribution of a 7-bit posit
//! (es = 0) and (b) the weight distribution of a trained DNN — both
//! cluster heavily in [−1, 1], the paper's motivation for posits as a DNN
//! format.
//!
//! Output: `results/fig2_posit7_values.csv`, `results/fig2_weights.csv`.

use deep_positron::experiments::{histogram, paper_tasks, posit_value_histogram};
use dp_bench::{write_csv, Ascii};
use dp_posit::PositFormat;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (a) 7-bit posit value distribution.
    let p7 = PositFormat::new(7, 0).unwrap();
    let hist_a = posit_value_histogram(p7, -2.0, 2.0, 40);
    println!("== Fig. 2a: 7-bit posit (es=0) representable values in [-2, 2) ==");
    let plot_a = Ascii::new(60, 10, false).series(
        '#',
        "posit<7,0> values per bin",
        hist_a.iter().map(|&(c, n)| (c, n as f64)),
    );
    println!("{}", plot_a.render());
    let within: usize = hist_a
        .iter()
        .filter(|(c, _)| (-1.0..=1.0).contains(c))
        .map(|(_, n)| n)
        .sum();
    let total = p7.reals().count();
    println!(
        "{}/{} representable values fall in [-1, 1] ({:.1}%)\n",
        within,
        total,
        100.0 * within as f64 / total as f64
    );

    // (b) trained-network weight distribution (WBC stands in for AlexNet).
    eprintln!("training the WBC model for the weight histogram...");
    let tasks = paper_tasks(quick, 42);
    let weights: Vec<f64> = tasks[0]
        .mlp
        .all_weights()
        .iter()
        .map(|&w| w as f64)
        .collect();
    let hist_b = histogram(weights.iter().copied(), -2.0, 2.0, 40);
    println!("== Fig. 2b: trained WBC MLP weight distribution ==");
    let plot_b = Ascii::new(60, 10, false).series(
        '#',
        "weights per bin",
        hist_b.iter().map(|&(c, n)| (c, n as f64)),
    );
    println!("{}", plot_b.render());
    let w_within = weights.iter().filter(|w| w.abs() <= 1.0).count();
    println!(
        "{}/{} weights fall in [-1, 1] ({:.1}%)",
        w_within,
        weights.len(),
        100.0 * w_within as f64 / weights.len() as f64
    );

    let to_rows = |h: &[(f64, usize)]| {
        h.iter()
            .map(|&(c, n)| vec![format!("{c:.4}"), n.to_string()])
            .collect::<Vec<_>>()
    };
    write_csv(
        "results/fig2_posit7_values.csv",
        &["bin_center", "count"],
        &to_rows(&hist_a),
    )
    .expect("write csv");
    write_csv(
        "results/fig2_weights.csv",
        &["bin_center", "count"],
        &to_rows(&hist_b),
    )
    .expect("write csv");
    println!("\nwrote results/fig2_posit7_values.csv, results/fig2_weights.csv");
}
