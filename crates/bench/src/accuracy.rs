//! Decimal-accuracy analysis of number formats.
//!
//! Decimal accuracy — `−log10 |log10(x̂ / x)|` — is the standard metric of
//! the posit literature (Gustafson & Yonemoto 2017) for how faithfully a
//! format represents a real value; the paper's "higher accuracy" claims
//! for posits trace back to it. This module measures it for any
//! quantizer over a log-uniform sample of a value range.

/// Decimal accuracy of representing `x` as `x_hat`:
/// `−log10 |log10(x_hat / x)|`. Larger is better; exact representation
/// yields infinity, which callers usually clamp for averaging.
pub fn decimal_accuracy(x: f64, x_hat: f64) -> f64 {
    assert!(x > 0.0, "decimal accuracy is defined on positive values");
    if x_hat <= 0.0 {
        return f64::NEG_INFINITY; // flushed to zero or sign error
    }
    let err = (x_hat / x).log10().abs();
    if err == 0.0 {
        f64::INFINITY
    } else {
        -err.log10()
    }
}

/// Mean decimal accuracy of `quantize` over `samples` log-uniform points
/// in `[lo, hi]`, with exact hits clamped to `clamp` digits.
pub fn mean_decimal_accuracy(
    quantize: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    samples: usize,
    clamp: f64,
) -> f64 {
    assert!(lo > 0.0 && hi > lo && samples > 0);
    let (l0, l1) = (lo.log10(), hi.log10());
    let mut total = 0.0;
    for i in 0..samples {
        let x = 10f64.powf(l0 + (l1 - l0) * (i as f64 + 0.5) / samples as f64);
        let da = decimal_accuracy(x, quantize(x));
        total += da.clamp(-clamp, clamp);
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_representation_is_infinite() {
        assert_eq!(decimal_accuracy(2.0, 2.0), f64::INFINITY);
    }

    #[test]
    fn one_percent_error_is_about_two_digits() {
        let da = decimal_accuracy(100.0, 101.0);
        assert!((da - 2.36).abs() < 0.05, "{da}");
    }

    #[test]
    fn flush_to_zero_is_negative_infinity() {
        assert_eq!(decimal_accuracy(1e-30, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn mean_accuracy_prefers_finer_formats() {
        let p8 = dp_posit::PositFormat::new(8, 0).unwrap();
        let p12 = dp_posit::PositFormat::new(12, 0).unwrap();
        let q8 = |v: f64| dp_posit::convert::to_f64(p8, dp_posit::convert::from_f64(p8, v));
        let q12 = |v: f64| dp_posit::convert::to_f64(p12, dp_posit::convert::from_f64(p12, v));
        let a8 = mean_decimal_accuracy(q8, 0.01, 10.0, 500, 6.0);
        let a12 = mean_decimal_accuracy(q12, 0.01, 10.0, 500, 6.0);
        assert!(a12 > a8 + 0.5, "p12 {a12} vs p8 {a8}");
    }
}
