//! Small table / CSV rendering helpers shared by the figure binaries.

use std::fmt::Display;
use std::fs;
use std::io;
use std::path::Path;

/// Renders rows as an aligned ASCII table with a header.
///
/// ```
/// let t = dp_bench::render_table(
///     &["format", "luts"],
///     &[vec!["posit<8,0>".to_string(), "652".to_string()]],
/// );
/// assert!(t.contains("posit<8,0>"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(ncol) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes rows as CSV under `results/` (creates the directory if needed).
///
/// # Errors
///
/// Propagates I/O errors from creating the directory or writing the file.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let mut s = header.join(",");
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    fs::write(path, s)
}

/// A tiny ASCII scatter/line plot for terminal figure output.
///
/// Each series is a set of `(x, y)` points drawn with its own glyph on a
/// shared log-or-linear canvas. This is deliberately minimal — the CSVs are
/// the real artifact; the plot gives the figure's *shape* at a glance.
#[derive(Debug, Clone)]
pub struct Ascii {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<Series>,
}

/// One plotted series: glyph, legend name, `(x, y)` points.
type Series = (char, String, Vec<(f64, f64)>);

impl Ascii {
    /// Creates a canvas of `width × height` characters; `log_y` plots the
    /// y axis in log10.
    pub fn new(width: usize, height: usize, log_y: bool) -> Self {
        Ascii {
            width: width.max(16),
            height: height.max(4),
            log_y,
            series: Vec::new(),
        }
    }

    /// Adds a named series drawn with `glyph`.
    pub fn series<I: IntoIterator<Item = (f64, f64)>>(
        mut self,
        glyph: char,
        name: &str,
        pts: I,
    ) -> Self {
        self.series
            .push((glyph, name.to_string(), pts.into_iter().collect()));
        self
    }

    /// Renders the canvas with axes and a legend.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, p)| p.iter().copied())
            .map(|(x, y)| (x, if self.log_y { y.max(1e-300).log10() } else { y }))
            .collect();
        if pts.is_empty() {
            return String::from("(empty plot)\n");
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, _, series) in &self.series {
            for &(x, y) in series {
                let yy = if self.log_y { y.max(1e-300).log10() } else { y };
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((yy - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = *glyph;
            }
        }
        let mut out = String::new();
        let ylab = |v: f64| {
            if self.log_y {
                format!("1e{v:.1}")
            } else {
                format!("{v:.3}")
            }
        };
        out.push_str(&format!("{:>10} +", ylab(y1)));
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        for (i, row) in grid.iter().enumerate() {
            let label = if i == self.height - 1 {
                format!("{:>10} |", ylab(y0))
            } else {
                format!("{:>10} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>12}{:<.3} .. {:.3}\n", "x: ", x0, x1));
        for (glyph, name, _) in &self.series {
            out.push_str(&format!("{:>12}{} = {}\n", "", glyph, name));
        }
        out
    }
}

/// Formats a float with engineering-friendly precision for table cells.
pub fn fmt_num<T: Display + Into<f64> + Copy>(v: T) -> String {
    let f: f64 = v.into();
    if f == 0.0 {
        return "0".into();
    }
    let a = f.abs();
    if !(1e-3..1e4).contains(&a) {
        format!("{f:.3e}")
    } else {
        format!("{f:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dp_bench_test_csv");
        let path = dir.join("t.csv");
        write_csv(&path, &["x", "y"], &[vec!["1".into(), "2".into()]]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ascii_plot_renders() {
        let p = Ascii::new(20, 6, false)
            .series('o', "s1", vec![(1.0, 1.0), (2.0, 2.0)])
            .series('x', "s2", vec![(1.5, 1.5)]);
        let s = p.render();
        assert!(s.contains('o') && s.contains('x') && s.contains("s1"));
        assert!(Ascii::new(10, 4, true).render().contains("empty"));
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.5), "1.5000");
        assert!(fmt_num(1e7).contains('e'));
        assert!(fmt_num(1e-7).contains('e'));
    }
}
