//! # dp-bench — experiment harness for the Deep Positron reproduction
//!
//! Shared plumbing (CSV/table writers, sweep definitions) for the binaries
//! that regenerate every table and figure of the paper. See `src/bin/` for
//! the per-artifact entry points and `benches/` for criterion benchmarks.

pub mod accuracy;
pub mod report;
pub mod timing;

pub use report::{render_table, write_csv, Ascii};
pub use timing::{measure, Measurement};
