//! Zero-dependency micro-benchmark harness.
//!
//! Criterion is outside this workspace's offline dependency allow-list, so
//! the `benches/` targets use this small harness instead: warm-up,
//! automatic iteration-count calibration to a target sample duration, a
//! median over several samples (robust to scheduler noise), and a JSON
//! report writer for committed baselines (`BENCH_*.json`).
//!
//! ```
//! let m = dp_bench::timing::measure("sum", 256, || {
//!     (0u64..256).fold(0u64, |a, b| a ^ b)
//! });
//! assert!(m.ns_per_iter > 0.0);
//! assert!(m.elems_per_sec() > 0.0);
//! ```

use std::fmt::Write as _;
use std::fs;
use std::hint::black_box;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether this bench run is a **smoke run**: tiny sample budgets, meant
/// for CI to verify that every bench binary still runs end to end and
/// emits valid JSON — not to produce meaningful numbers. Enabled by a
/// `--smoke` argument (`cargo bench --bench X -- --smoke`) or
/// `DP_BENCH_SMOKE=1` in the environment.
pub fn smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::args().any(|a| a == "--smoke")
            || matches!(
                std::env::var("DP_BENCH_SMOKE").as_deref(),
                Ok("1") | Ok("true")
            )
    })
}

/// Where a bench should write its JSON baseline: the committed
/// `BENCH_<name>.json` at the repository root normally, or
/// `results/smoke/BENCH_<name>.json` (gitignored) under [`smoke`] so CI
/// smoke runs never dirty the committed baselines.
pub fn out_path(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if smoke() {
        root.join("results/smoke")
            .join(format!("BENCH_{name}.json"))
    } else {
        root.join(format!("BENCH_{name}.json"))
    }
}

/// One benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/variant`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration of the closure.
    pub ns_per_iter: f64,
    /// Work elements (MACs, samples, ops) per iteration, for throughput.
    pub elems_per_iter: u64,
}

impl Measurement {
    /// Iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }

    /// Work elements per second (`elems_per_iter × iters_per_sec`).
    pub fn elems_per_sec(&self) -> f64 {
        self.elems_per_iter as f64 * self.iters_per_sec()
    }
}

/// Target wall-clock time for one timed sample.
const SAMPLE_NS: u64 = 60_000_000; // 60 ms
/// One timed sample under [`smoke`]: just prove the workload runs.
const SMOKE_SAMPLE_NS: u64 = 1_000_000; // 1 ms
/// Number of timed samples; the median is reported.
const SAMPLES: usize = 7;
/// Sample count under [`smoke`].
const SMOKE_SAMPLES: usize = 3;

/// Times `f`, returning the median ns/iteration; `elems_per_iter` scales
/// throughput (e.g. the dot-product length when `f` runs one dot product).
/// Under [`smoke`] the sample budget shrinks ~60× (the numbers are then
/// only good for "it still runs and reports").
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn measure<R, F: FnMut() -> R>(name: &str, elems_per_iter: u64, mut f: F) -> Measurement {
    let (sample_ns, n_samples) = if smoke() {
        (SMOKE_SAMPLE_NS, SMOKE_SAMPLES)
    } else {
        (SAMPLE_NS, SAMPLES)
    };
    // Warm-up and calibration: find an iteration count that fills the
    // sample budget, growing geometrically from 1.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t.elapsed().as_nanos() as u64;
        if elapsed >= sample_ns / 4 {
            // Scale to the sample budget from the measured rate.
            let per_iter = (elapsed / iters).max(1);
            iters = (sample_ns / per_iter).clamp(1, 1_000_000_000);
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut samples: Vec<f64> = (0..n_samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        name: name.to_string(),
        ns_per_iter: samples[n_samples / 2],
        elems_per_iter,
    }
}

/// Renders measurements as an aligned table with throughput columns.
pub fn render_measurements(rows: &[Measurement]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                format!("{:.1}", m.ns_per_iter),
                format!("{:.3e}", m.elems_per_sec()),
            ]
        })
        .collect();
    crate::report::render_table(&["benchmark", "ns/iter", "elems/sec"], &table)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes measurements as a stable, diffable JSON baseline.
///
/// Layout: `{"meta": {..}, "results": [{"name", "ns_per_iter",
/// "elems_per_iter", "elems_per_sec"}, ..]}` — hand-rendered because serde
/// is outside the offline dependency allow-list.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json<P: AsRef<Path>>(
    path: P,
    meta: &[(&str, String)],
    rows: &[Measurement],
) -> io::Result<()> {
    let mut s = String::from("{\n  \"meta\": {\n");
    for (i, (k, v)) in meta.iter().enumerate() {
        let comma = if i + 1 < meta.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{}\": \"{}\"{comma}",
            json_escape(k),
            json_escape(v)
        );
    }
    s.push_str("  },\n  \"results\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"elems_per_iter\": {}, \"elems_per_sec\": {:.4e}}}{comma}",
            json_escape(&m.name),
            m.ns_per_iter,
            m.elems_per_iter,
            m.elems_per_sec(),
        );
    }
    s.push_str("  ]\n}\n");
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_positive_rates() {
        let m = measure("noop-ish", 64, || {
            let mut a = 0u64;
            for i in 0..64u64 {
                a = a.wrapping_add(i * i);
            }
            a
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters_per_sec() > 0.0);
        assert_eq!(m.elems_per_iter, 64);
        assert!(m.elems_per_sec() > m.iters_per_sec());
    }

    #[test]
    fn render_includes_names_and_columns() {
        let rows = vec![Measurement {
            name: "g/v".into(),
            ns_per_iter: 123.4,
            elems_per_iter: 10,
        }];
        let t = render_measurements(&rows);
        assert!(t.contains("g/v") && t.contains("ns/iter"));
    }

    #[test]
    fn json_roundtrip_shape() {
        let rows = vec![Measurement {
            name: "a\"b".into(),
            ns_per_iter: 1.5,
            elems_per_iter: 2,
        }];
        let dir = std::env::temp_dir().join("dp_bench_timing_test");
        let path = dir.join("t.json");
        write_json(&path, &[("k", "v".into())], &rows).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"meta\""));
        assert!(s.contains("a\\\"b"));
        assert!(s.trim_end().ends_with('}'));
        std::fs::remove_dir_all(dir).ok();
    }
}
