//! Gateway admission under steady, burst and overload traffic: the
//! bounded-ring front end (`dp_gateway`) over the persistent `dp_serve`
//! pool, with shed accounting.
//!
//! Run with `cargo bench --bench gateway`. Writes the committed baseline
//! `BENCH_gateway.json` at the repository root (`results/smoke/` under
//! `--smoke`), with the same JSON schema as `BENCH_serving.json` so CI
//! can cross-validate the two.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_bench::timing::{measure, out_path, render_measurements, smoke, write_json, Measurement};
use dp_fixed::FixedFormat;
use dp_gateway::{Admission, Gateway, GatewayError, OverloadPolicy, SubmitOptions, TraceConfig};
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::ModelKey;
use std::hint::black_box;
use std::time::Instant;

const QUEUE_CAPACITY: usize = 16;

fn formats() -> [(&'static str, NumericFormat); 3] {
    [
        (
            "posit8e0",
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        ),
        (
            "float8e4m3",
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        ),
        (
            "fixed8q6",
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ),
    ]
}

fn gateway(policy: OverloadPolicy, mlp: &Mlp) -> (Gateway, Vec<ModelKey>) {
    gateway_traced(policy, mlp, TraceConfig::off())
}

fn gateway_traced(
    policy: OverloadPolicy,
    mlp: &Mlp,
    trace: TraceConfig,
) -> (Gateway, Vec<ModelKey>) {
    let gw = Gateway::builder()
        .chunk_samples(16)
        .queue_capacity(QUEUE_CAPACITY)
        .policy(policy)
        .trace(trace)
        .build();
    let keys = formats()
        .iter()
        .map(|(_, fmt)| {
            gw.registry()
                .register("iris", QuantizedMlp::quantize(mlp, *fmt))
                .expect("bench formats have EMAC datapaths")
        })
        .collect();
    (gw, keys)
}

fn main() {
    let split = dp_datasets::iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: if smoke() { 8 } else { 60 },
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );
    let req: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(if smoke() { 8 } else { 32 })
        .cloned()
        .collect();
    let req_samples = req.len();
    let x = split.test.features[0].clone();

    let mut rows: Vec<Measurement> = Vec::new();

    // Steady state: bursts within ring capacity — every request admitted,
    // mixed posit/minifloat/fixed traffic through one gateway.
    let (gw_steady, keys) = gateway(OverloadPolicy::ShedNewest, &mlp);
    let steady_requests = QUEUE_CAPACITY / 2;
    rows.push(measure(
        "steady_mixed3_gateway",
        (steady_requests * req_samples) as u64,
        || {
            let handles: Vec<_> = (0..steady_requests)
                .map(|r| {
                    gw_steady
                        .try_submit_forward(&keys[r % keys.len()], black_box(req.clone()))
                        .expect_admitted()
                })
                .collect();
            handles
                .iter()
                .map(|h| h.wait().unwrap().len())
                .sum::<usize>()
        },
    ));

    // Single-request latency: admission ring + dispatcher + pool + handle.
    rows.push(measure("gateway_single_latency", 1, || {
        gw_steady
            .try_submit_classify(&keys[0], vec![black_box(x.clone())])
            .expect_admitted()
            .wait()
            .unwrap()
            .len()
    }));
    let steady_snap = gw_steady.snapshot();
    drop(gw_steady);

    // The same steady-state workload with the flight recorder sampling
    // every request (worst-case trace overhead: one Arc per admission,
    // atomic stage stamps, seqlock publication at resolve). CI pins this
    // row within 10% of steady_mixed3_gateway.
    let (gw_traced, keys) = gateway_traced(
        OverloadPolicy::ShedNewest,
        &mlp,
        TraceConfig::every_request(),
    );
    rows.push(measure(
        "steady_mixed3_traced",
        (steady_requests * req_samples) as u64,
        || {
            let handles: Vec<_> = (0..steady_requests)
                .map(|r| {
                    gw_traced
                        .try_submit_forward(&keys[r % keys.len()], black_box(req.clone()))
                        .expect_admitted()
                })
                .collect();
            handles
                .iter()
                .map(|h| h.wait().unwrap().len())
                .sum::<usize>()
        },
    ));
    let traced_stats = gw_traced
        .recorder()
        .map(|r| r.stats())
        .expect("traced gateway has a recorder");
    drop(gw_traced);

    // Burst at 2× capacity, ShedNewest: dispatch paused while the burst
    // lands (so the ring genuinely fills), then released; the overflow is
    // shed, the admitted half completes. elems = samples served.
    let (gw_burst, keys) = gateway(OverloadPolicy::ShedNewest, &mlp);
    rows.push(measure(
        "burst_2x_shed_newest",
        (QUEUE_CAPACITY * req_samples) as u64,
        || {
            gw_burst.pause_dispatch();
            let mut handles = Vec::new();
            let mut shed = 0usize;
            for r in 0..2 * QUEUE_CAPACITY {
                match gw_burst.try_submit_forward(&keys[r % keys.len()], black_box(req.clone())) {
                    Admission::Admitted(h) => handles.push(h),
                    Admission::QueueFull => shed += 1,
                    other => panic!("unexpected verdict {other:?}"),
                }
            }
            gw_burst.resume_dispatch();
            assert_eq!(handles.len() + shed, 2 * QUEUE_CAPACITY);
            handles
                .iter()
                .map(|h| h.wait().unwrap().len())
                .sum::<usize>()
        },
    ));
    let burst_snap = gw_burst.snapshot();
    drop(gw_burst);

    // Sustained overload, ShedOldest: every submission is admitted but
    // the oldest half is evicted; survivors complete, evictees resolve
    // Shed without hanging.
    let (gw_over, keys) = gateway(OverloadPolicy::ShedOldest, &mlp);
    rows.push(measure(
        "overload_shed_oldest",
        (QUEUE_CAPACITY * req_samples) as u64,
        || {
            gw_over.pause_dispatch();
            let handles: Vec<_> = (0..2 * QUEUE_CAPACITY)
                .map(|r| {
                    gw_over
                        .try_submit_forward(&keys[r % keys.len()], black_box(req.clone()))
                        .expect_admitted()
                })
                .collect();
            gw_over.resume_dispatch();
            handles
                .iter()
                .map(|h| match h.wait() {
                    Ok(out) => out.len(),
                    Err(dp_gateway::GatewayError::Shed) => 0,
                    Err(e) => panic!("unexpected {e}"),
                })
                .sum::<usize>()
        },
    ));
    let overload_snap = gw_over.snapshot();
    drop(gw_over);

    // Pure admission cost at saturation: dispatch paused and the ring
    // full, every try_submit returns QueueFull — the non-blocking verdict
    // path that must stay cheap under attack-level load.
    let (gw_adm, keys) = gateway(OverloadPolicy::ShedNewest, &mlp);
    gw_adm.pause_dispatch();
    while gw_adm
        .try_submit_forward(&keys[0], req.clone())
        .is_admitted()
    {}
    rows.push(measure("admission_queue_full_verdict", 1, || {
        matches!(
            gw_adm.try_submit_forward(&keys[0], black_box(req.clone())),
            Admission::QueueFull
        )
    }));
    gw_adm.resume_dispatch();
    gw_adm.wait_idle();
    drop(gw_adm);

    // Deadline churn: a full ring of already-expired requests. The
    // dispatcher's lazy-expiry path resolves and refunds every one without
    // ever touching the engine — the fixed per-request overhead deadlines
    // add to the admission/dispatch pipeline. elems = expiry verdicts.
    let (gw_dead, keys) = gateway(OverloadPolicy::ShedNewest, &mlp);
    rows.push(measure(
        "deadline_churn_expired",
        QUEUE_CAPACITY as u64,
        || {
            gw_dead.pause_dispatch();
            let handles: Vec<_> = (0..QUEUE_CAPACITY)
                .map(|r| {
                    gw_dead
                        .try_submit_forward_opts(
                            &keys[r % keys.len()],
                            black_box(req.clone()),
                            SubmitOptions::new().deadline(Instant::now()),
                        )
                        .expect_admitted()
                })
                .collect();
            gw_dead.resume_dispatch();
            let expired = handles
                .iter()
                .filter(|h| matches!(h.wait(), Err(GatewayError::DeadlineExceeded)))
                .count();
            assert_eq!(expired, QUEUE_CAPACITY, "every stale request must expire");
            expired
        },
    ));
    gw_dead.wait_idle();
    let dead_snap = gw_dead.snapshot();
    drop(gw_dead);

    println!("{}", render_measurements(&rows));

    let path = out_path("gateway");
    let meta = [
        ("bench", "gateway".to_string()),
        ("command", "cargo bench --bench gateway".to_string()),
        ("topology", "iris 4-16-3".to_string()),
        ("queue_capacity", QUEUE_CAPACITY.to_string()),
        ("request_samples", req_samples.to_string()),
        (
            "steady",
            format!(
                "submitted={} admitted={} shed={}",
                steady_snap.submitted,
                steady_snap.admitted,
                steady_snap.shed_total()
            ),
        ),
        (
            "traced",
            format!(
                "begun={} published={} dropped_contended={}",
                traced_stats.begun, traced_stats.published, traced_stats.dropped_contended
            ),
        ),
        (
            "burst_shed_newest",
            format!(
                "submitted={} admitted={} shed={} completed={}",
                burst_snap.submitted,
                burst_snap.admitted,
                burst_snap.shed_total(),
                burst_snap.completed
            ),
        ),
        (
            "overload_shed_oldest",
            format!(
                "submitted={} admitted={} evicted={} completed={}",
                overload_snap.submitted,
                overload_snap.admitted,
                overload_snap.shed_evicted,
                overload_snap.completed
            ),
        ),
        (
            "deadline_churn",
            format!(
                "submitted={} expired={}",
                dead_snap.submitted, dead_snap.deadline_exceeded
            ),
        ),
        (
            "note",
            "elems = inference samples served per iteration (1 for latency/verdict rows); \
             burst/overload rows pause dispatch while 2x-capacity traffic lands, so shedding is \
             deterministic; admission_queue_full_verdict is the pure non-blocking rejection path"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_gateway.json");
    println!("\nwrote {}", path.display());

    // Prometheus exposition of the deadline-churn gateway's final state:
    // CI asserts the robustness counters (deadline_exceeded, worker
    // supervision, degraded gauge) keep appearing in the rendered output.
    let prom_path = path.with_file_name("gateway_metrics.prom");
    std::fs::write(&prom_path, dead_snap.to_prometheus()).expect("write gateway_metrics.prom");
    println!("wrote {}", prom_path.display());
}
