//! TCP front-end latency and throughput over loopback: single-request
//! round trip, pipelined throughput at depth 16, and the pure
//! rejection-verdict path (unknown model) — the wire-level costs the
//! in-process `gateway` bench cannot see.
//!
//! Run with `cargo bench --bench net`. Writes the committed baseline
//! `BENCH_net.json` at the repository root (`results/smoke/` under
//! `--smoke`).

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_bench::timing::{measure, out_path, render_measurements, smoke, write_json, Measurement};
use dp_fixed::FixedFormat;
use dp_gateway::Gateway;
use dp_minifloat::FloatFormat;
use dp_net::wire::Request;
use dp_net::{NetClient, NetServer, WireStatus};
use dp_posit::PositFormat;
use std::hint::black_box;
use std::sync::Arc;

const PIPELINE_DEPTH: usize = 16;

fn formats() -> [(&'static str, NumericFormat); 3] {
    [
        (
            "posit8e0",
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        ),
        (
            "float8e4m3",
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        ),
        (
            "fixed8q6",
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ),
    ]
}

fn main() {
    let split = dp_datasets::iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: if smoke() { 8 } else { 60 },
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );
    let req: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(if smoke() { 8 } else { 32 })
        .cloned()
        .collect();
    let req_samples = req.len();
    let x = split.test.features[0].clone();

    let gw = Arc::new(
        Gateway::builder()
            .chunk_samples(16)
            .queue_capacity(64)
            .build(),
    );
    let fmt_strings: Vec<String> = formats()
        .iter()
        .map(|(_, fmt)| {
            gw.registry()
                .register("iris", QuantizedMlp::quantize(&mlp, *fmt))
                .expect("bench formats have EMAC datapaths")
                .format()
                .to_string()
        })
        .collect();
    let server = NetServer::builder(Arc::clone(&gw))
        .max_inflight(PIPELINE_DEPTH)
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).expect("connect loopback");

    let mut rows: Vec<Measurement> = Vec::new();

    // One classify request, one sample: the full wire round trip —
    // encode, TCP, decode, admission, dispatch, pool, handle, response.
    rows.push(measure("net_roundtrip_single", 1, || {
        let resp = client
            .classify("iris", &fmt_strings[0], 0, vec![black_box(x.clone())])
            .expect("roundtrip io");
        assert_eq!(resp.status(), WireStatus::Ok);
        resp.id
    }));

    // Pipelined throughput at the per-connection inflight bound: depth
    // 16, mixed posit/minifloat/fixed traffic, responses in order.
    rows.push(measure(
        "net_pipelined_d16_mixed3",
        (PIPELINE_DEPTH * req_samples) as u64,
        || {
            let reqs: Vec<Request> = (0..PIPELINE_DEPTH)
                .map(|i| {
                    client.classify_request(
                        "iris",
                        &fmt_strings[i % fmt_strings.len()],
                        0,
                        black_box(req.clone()),
                    )
                })
                .collect();
            for r in &reqs {
                client.send(r).expect("pipelined send");
            }
            let mut served = 0usize;
            for r in &reqs {
                let resp = client.recv().expect("pipelined recv");
                assert_eq!(resp.id, r.id());
                assert_eq!(resp.status(), WireStatus::Ok);
                served += req_samples;
            }
            served
        },
    ));

    // The pure rejection path: an unknown model's typed verdict, wire to
    // wire — what a misconfigured client pays, and the floor for every
    // load-shedding response under overload.
    rows.push(measure("net_reject_verdict", 1, || {
        let resp = client
            .classify("ghost", &fmt_strings[0], 0, vec![black_box(x.clone())])
            .expect("reject io");
        assert_eq!(resp.status(), WireStatus::ModelUnknown);
        resp.id
    }));

    println!("{}", render_measurements(&rows));

    drop(client);
    server.shutdown();
    let snap = gw.snapshot();

    let path = out_path("net");
    let meta = [
        ("bench", "net".to_string()),
        ("command", "cargo bench --bench net".to_string()),
        ("topology", "iris 4-16-3 over loopback TCP".to_string()),
        ("pipeline_depth", PIPELINE_DEPTH.to_string()),
        ("request_samples", req_samples.to_string()),
        (
            "final",
            format!(
                "submitted={} completed={} model_unknown={}",
                snap.submitted, snap.completed, snap.model_unknown
            ),
        ),
        (
            "note",
            "elems = inference samples served per iteration (1 for latency/verdict rows); \
             all traffic crosses a real loopback TCP connection with TCP_NODELAY; \
             net_reject_verdict never reaches the serving engine"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_net.json");
    println!("\nwrote {}", path.display());
}
