//! EMAC software-model throughput, **per slice and tile kernel**: exact
//! MACs per second for each format family through
//! [`dp_emac::Emac::dot_slice`] and [`dp_emac::Emac::dot_tile`], one row
//! per kernel the format band can run —
//!
//! * `*_product_table` — finished-product table (n ≤ 8, i128 window),
//! * `*_batched_fused` — gathered fused operands, hi/lo-lane accumulate,
//! * `*_scalar` — the per-element `mac()` loop on the same fast unit
//!   (PR 1's scalar fused-LUT path, the pre-slice baseline),
//! * `*_reference` — the pre-LUT bit-field + `WideInt` datapath,
//! * `*_product_tile` / `*_fused_tile` / `*_per_column_scalar` — the
//!   weight-stationary tile kernels: one `dot_tile` of the same row
//!   against B = 8 activation columns (cache-blocked product table,
//!   row-gathered fused operands, or the per-column wrap), with
//!   `elems = K × B` so MACs/sec is directly comparable to the row
//!   kernels,
//!
//! plus the quire for posits. Every row asserts the unit really selected
//! the kernel it claims to measure, so a silent fallback to a slower path
//! cannot produce a plausible-looking baseline.
//!
//! Run with `cargo bench --bench emac_throughput`. Writes the committed
//! baseline `BENCH_emac.json` at the repository root.

use dp_bench::timing::{measure, out_path, render_measurements, write_json, Measurement};
use dp_emac::{Emac, FixedEmac, FloatEmac, MacKernel, PositEmac, TileKernel};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::{PositFormat, Quire};
use std::hint::black_box;

/// Dot-product length (the paper's k = 128 reference accumulation count).
const K: usize = 128;

/// Batch width of the tile rows (the smallest width the ISSUE's
/// batch ≥ 8 target cares about; serving chunks are 64).
const TILE_B: usize = 8;

fn patterns(mask: u32, skip: u32) -> (Vec<u32>, Vec<u32>) {
    let mut s = 0xfeed_f00d_dead_beefu64;
    let mut ws = Vec::with_capacity(K);
    let mut xs = Vec::with_capacity(K);
    for _ in 0..K {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let a = (s as u32) & mask;
        let b = ((s >> 32) as u32) & mask;
        ws.push(if a == skip { 0 } else { a });
        xs.push(if b == skip { 0 } else { b });
    }
    (ws, xs)
}

/// `TILE_B` activation columns of length `K` (same pattern policy as
/// [`patterns`], distinct stream per column).
fn tile_cols(mask: u32, skip: u32) -> Vec<Vec<u32>> {
    let mut s = 0x0ddb_a115_c01a_b007u64;
    (0..TILE_B)
        .map(|_| {
            (0..K)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let a = (s as u32) & mask;
                    if a == skip {
                        0
                    } else {
                        a
                    }
                })
                .collect()
        })
        .collect()
}

/// One `dot_slice` row: asserts the unit runs `kernel`, then measures the
/// whole-row dot product.
fn slice_row<E: Emac>(
    rows: &mut Vec<Measurement>,
    label: &str,
    mut unit: E,
    kernel: MacKernel,
    ws: &[u32],
    xs: &[u32],
) {
    assert_eq!(
        unit.kernel(),
        kernel,
        "{label}: unit did not select the {kernel} kernel"
    );
    rows.push(measure(
        &format!("{label}_dot{K}_{kernel}"),
        K as u64,
        || {
            unit.reset();
            unit.dot_slice(black_box(ws), black_box(xs));
            unit.result()
        },
    ));
}

/// One `dot_tile` row: asserts the unit runs the `tile` kernel at
/// `TILE_B` columns, then measures one whole weight-stationary tile
/// (`K × TILE_B` MACs per iteration, so MACs/sec compares directly with
/// the per-row kernels).
fn tile_row<E: Emac>(
    rows: &mut Vec<Measurement>,
    label: &str,
    mut unit: E,
    tile: TileKernel,
    ws: &[u32],
    cols: &[Vec<u32>],
) {
    assert_eq!(
        unit.tile_kernel(cols.len()),
        tile,
        "{label}: unit did not select the {tile} tile kernel"
    );
    let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut out = vec![0u32; cols.len()];
    rows.push(measure(
        &format!("{label}_dot{K}x{TILE_B}_{tile}"),
        (K * cols.len()) as u64,
        || {
            unit.dot_tile(black_box(0), black_box(ws), black_box(&col_refs), &mut out);
            out[0]
        },
    ));
}

/// One scalar-loop row (`mac()` per element) on an already-built unit —
/// the pre-slice PR 1 baseline for fast units, the pre-LUT reference for
/// `new_reference()` units.
fn mac_loop_row<E: Emac>(
    rows: &mut Vec<Measurement>,
    name: &str,
    mut unit: E,
    ws: &[u32],
    xs: &[u32],
) {
    rows.push(measure(name, K as u64, || {
        unit.reset();
        for (&x, &y) in ws.iter().zip(xs) {
            unit.mac(black_box(x), black_box(y));
        }
        unit.result()
    }));
}

fn bench_posit(rows: &mut Vec<Measurement>, n: u32, es: u32) {
    let fmt = PositFormat::new(n, es).unwrap();
    let (ws, xs) = patterns(fmt.mask(), fmt.nar_bits());
    let cols = tile_cols(fmt.mask(), fmt.nar_bits());
    let label = format!("posit{n}e{es}");
    let expected = PositEmac::new(fmt, K as u64).kernel();
    tile_row(
        rows,
        &label,
        PositEmac::new(fmt, K as u64),
        PositEmac::new(fmt, K as u64).tile_kernel(TILE_B),
        &ws,
        &cols,
    );
    if expected == MacKernel::ProductTable {
        // The gathered-fused tile on the same 8-bit format, for the
        // blocked-product-vs-gather comparison at matched width.
        tile_row(
            rows,
            &label,
            PositEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            TileKernel::GatherFused,
            &ws,
            &cols,
        );
    }

    if expected == MacKernel::ProductTable {
        slice_row(
            rows,
            &label,
            PositEmac::new(fmt, K as u64),
            MacKernel::ProductTable,
            &ws,
            &xs,
        );
        slice_row(
            rows,
            &label,
            PositEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            MacKernel::BatchedFused,
            &ws,
            &xs,
        );
    } else if expected == MacKernel::BatchedFused {
        slice_row(
            rows,
            &label,
            PositEmac::new(fmt, K as u64),
            MacKernel::BatchedFused,
            &ws,
            &xs,
        );
    } else {
        slice_row(
            rows,
            &label,
            PositEmac::new(fmt, K as u64),
            MacKernel::Scalar,
            &ws,
            &xs,
        );
    }
    mac_loop_row(
        rows,
        &format!("{label}_dot{K}_scalar_mac"),
        PositEmac::new(fmt, K as u64),
        &ws,
        &xs,
    );
    mac_loop_row(
        rows,
        &format!("{label}_dot{K}_reference"),
        PositEmac::new_reference(fmt, K as u64),
        &ws,
        &xs,
    );

    let mut quire = Quire::new(fmt, K as u64);
    rows.push(measure(&format!("{label}_quire_dot{K}"), K as u64, || {
        quire.clear();
        for (&x, &y) in ws.iter().zip(&xs) {
            quire.add_product(black_box(x), black_box(y));
        }
        quire.to_posit()
    }));
}

fn bench_float(rows: &mut Vec<Measurement>, label: &str, we: u32, wf: u32) {
    let fmt = FloatFormat::new(we, wf).unwrap();
    let (ws, xs) = patterns(fmt.mask(), fmt.nan_bits());
    let cols = tile_cols(fmt.mask(), fmt.nan_bits());
    let expected = FloatEmac::new(fmt, K as u64).kernel();
    tile_row(
        rows,
        label,
        FloatEmac::new(fmt, K as u64),
        FloatEmac::new(fmt, K as u64).tile_kernel(TILE_B),
        &ws,
        &cols,
    );
    if expected == MacKernel::ProductTable {
        tile_row(
            rows,
            label,
            FloatEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            TileKernel::GatherFused,
            &ws,
            &cols,
        );
    }

    if expected == MacKernel::ProductTable {
        slice_row(
            rows,
            label,
            FloatEmac::new(fmt, K as u64),
            MacKernel::ProductTable,
            &ws,
            &xs,
        );
        slice_row(
            rows,
            label,
            FloatEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            MacKernel::BatchedFused,
            &ws,
            &xs,
        );
    } else {
        slice_row(
            rows,
            label,
            FloatEmac::new(fmt, K as u64),
            expected,
            &ws,
            &xs,
        );
    }
    mac_loop_row(
        rows,
        &format!("{label}_dot{K}_scalar_mac"),
        FloatEmac::new(fmt, K as u64),
        &ws,
        &xs,
    );
    mac_loop_row(
        rows,
        &format!("{label}_dot{K}_reference"),
        FloatEmac::new_reference(fmt, K as u64),
        &ws,
        &xs,
    );
}

fn bench_fixed(rows: &mut Vec<Measurement>, label: &str, n: u32, q: u32) {
    let fmt = FixedFormat::new(n, q).unwrap();
    let (ws, xs) = patterns((1u32 << n) - 1, 1 << n);
    let cols = tile_cols((1u32 << n) - 1, 1 << n);
    let expected = FixedEmac::new(fmt, K as u64).kernel();
    tile_row(
        rows,
        label,
        FixedEmac::new(fmt, K as u64),
        FixedEmac::new(fmt, K as u64).tile_kernel(TILE_B),
        &ws,
        &cols,
    );
    if expected == MacKernel::ProductTable {
        tile_row(
            rows,
            label,
            FixedEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            TileKernel::GatherFused,
            &ws,
            &cols,
        );
    }

    if expected == MacKernel::ProductTable {
        slice_row(
            rows,
            label,
            FixedEmac::new(fmt, K as u64),
            MacKernel::ProductTable,
            &ws,
            &xs,
        );
        slice_row(
            rows,
            label,
            FixedEmac::new(fmt, K as u64).with_kernel_cap(MacKernel::BatchedFused),
            MacKernel::BatchedFused,
            &ws,
            &xs,
        );
    } else {
        slice_row(
            rows,
            label,
            FixedEmac::new(fmt, K as u64),
            expected,
            &ws,
            &xs,
        );
    }
    mac_loop_row(
        rows,
        &format!("{label}_dot{K}_scalar_mac"),
        FixedEmac::new(fmt, K as u64),
        &ws,
        &xs,
    );
}

fn main() {
    let mut rows: Vec<Measurement> = Vec::new();

    // The paper's headline 8-bit formats: product-table vs batched vs the
    // PR 1 scalar fused-LUT loop vs the pre-LUT reference.
    for es in [0u32, 1, 2] {
        bench_posit(&mut rows, 8, es);
    }
    // The §IV sweep's 16-bit formats: batched fused kernel over the split
    // table + native (i128/256-bit) accumulator.
    for es in [0u32, 1, 2] {
        bench_posit(&mut rows, 16, es);
    }
    // Past the split ceiling: the scalar kernel on the WideInt register —
    // fast and reference paths should roughly coincide.
    bench_posit(&mut rows, 17, 1);

    bench_float(&mut rows, "float8e4m3", 4, 3);
    bench_float(&mut rows, "float16e5m10", 5, 10);

    bench_fixed(&mut rows, "fixed8q6", 8, 6);
    bench_fixed(&mut rows, "fixed16q8", 16, 8);

    println!("{}", render_measurements(&rows));

    // Headline speedups per format: each kernel over the reference path
    // (fixed point has no WideInt reference; its baseline is scalar_mac),
    // plus each tile kernel over its per-row counterpart at matched
    // MACs/sec (tile rows carry K × TILE_B elems per iteration).
    let find = |name: &str| rows.iter().find(|m| m.name == name);
    for label in [
        "posit8e0",
        "posit8e1",
        "posit8e2",
        "posit16e0",
        "posit16e1",
        "posit16e2",
        "posit17e1",
        "float8e4m3",
        "float16e5m10",
        "fixed8q6",
        "fixed16q8",
    ] {
        let baseline = find(&format!("{label}_dot{K}_reference"))
            .or_else(|| find(&format!("{label}_dot{K}_scalar_mac")))
            .unwrap();
        for kernel in ["product_table", "batched_fused", "scalar", "scalar_mac"] {
            if let Some(m) = find(&format!("{label}_dot{K}_{kernel}")) {
                println!(
                    "{label} {kernel}: {:.2}x MACs/sec over {}",
                    baseline.ns_per_iter / m.ns_per_iter,
                    baseline.name,
                );
            }
        }
        for (tile, row_kernel) in [
            ("product_tile", "product_table"),
            ("fused_tile", "batched_fused"),
            ("per_column_scalar", "scalar"),
        ] {
            if let (Some(t), Some(r)) = (
                find(&format!("{label}_dot{K}x{TILE_B}_{tile}")),
                find(&format!("{label}_dot{K}_{row_kernel}")),
            ) {
                println!(
                    "{label} {tile}: {:.2}x MACs/sec over {} at B={TILE_B}",
                    t.elems_per_sec() / r.elems_per_sec(),
                    r.name,
                );
            }
        }
    }

    let path = out_path("emac");
    let meta = [
        ("bench", "emac_throughput".to_string()),
        ("command", "cargo bench --bench emac_throughput".to_string()),
        ("k", K.to_string()),
        ("tile_b", TILE_B.to_string()),
        (
            "note",
            "elems = MACs; one row per slice kernel through dot_slice: *_product_table = \
             2^(2n)-entry finished-product tables (n <= 8), *_batched_fused = gathered fused \
             operands + hi/lo-lane i128 (or 256-bit) accumulate (<= 16 bits), *_scalar = \
             dot_slice on the scalar band; *_scalar_mac = per-element mac() loop on the same \
             fast unit (PR 1's scalar fused-LUT baseline); *_reference = pre-LUT bit-field + \
             WideInt datapath. dot{K}x{B} rows run dot_tile (weight-stationary tile, B \
             activation columns, elems = K*B): *_product_tile = cache-blocked product table, \
             *_fused_tile = weight row's fused operands gathered once for all columns, \
             *_per_column_scalar = per-column wrap on the scalar band"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_emac.json");
    println!("\nwrote {}", path.display());
}
