//! Criterion benchmarks of the EMAC software models: exact MACs per
//! second for each format family at 8 bits, plus the quire.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dp_emac::{Emac, FixedEmac, FloatEmac, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::{PositFormat, Quire};
use std::time::Duration;

const K: usize = 128;

fn patterns(mask: u32, skip: u32) -> Vec<(u32, u32)> {
    let mut s = 0xfeed_f00d_dead_beefu64;
    (0..K)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = (s as u32) & mask;
            let b = ((s >> 32) as u32) & mask;
            (if a == skip { 0 } else { a }, if b == skip { 0 } else { b })
        })
        .collect()
}

fn bench_emacs(c: &mut Criterion) {
    let mut g = c.benchmark_group("emac_throughput");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20)
        .throughput(Throughput::Elements(K as u64));

    let pfmt = PositFormat::new(8, 0).unwrap();
    let pv = patterns(pfmt.mask(), pfmt.nar_bits());
    g.bench_function("posit8_emac_dot128", |b| {
        let mut e = PositEmac::new(pfmt, K as u64);
        b.iter(|| {
            e.reset();
            for &(x, y) in &pv {
                e.mac(black_box(x), black_box(y));
            }
            e.result()
        })
    });
    g.bench_function("posit8_quire_dot128", |b| {
        let mut q = Quire::new(pfmt, K as u64);
        b.iter(|| {
            q.clear();
            for &(x, y) in &pv {
                q.add_product(black_box(x), black_box(y));
            }
            q.to_posit()
        })
    });

    let ffmt = FloatFormat::new(4, 3).unwrap();
    let fv = patterns(ffmt.mask(), ffmt.nan_bits());
    g.bench_function("float8_emac_dot128", |b| {
        let mut e = FloatEmac::new(ffmt, K as u64);
        b.iter(|| {
            e.reset();
            for &(x, y) in &fv {
                e.mac(black_box(x), black_box(y));
            }
            e.result()
        })
    });

    let xfmt = FixedFormat::new(8, 6).unwrap();
    let xv = patterns(0xff, 0x100);
    g.bench_function("fixed8_emac_dot128", |b| {
        let mut e = FixedEmac::new(xfmt, K as u64);
        b.iter(|| {
            e.reset();
            for &(x, y) in &xv {
                e.mac(black_box(x), black_box(y));
            }
            e.result()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_emacs);
criterion_main!(benches);
