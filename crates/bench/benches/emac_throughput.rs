//! EMAC software-model throughput: exact MACs per second for each format
//! family, fast path (decode LUT or 13–16-bit split table + native
//! `i128`/256-bit accumulator) vs the pre-LUT reference datapath
//! (Algorithm-1 bit-field decode + `WideInt`), plus the quire.
//!
//! Run with `cargo bench --bench emac_throughput`. Writes the committed
//! baseline `BENCH_emac.json` at the repository root (before = `*_reference`
//! rows, after = the matching fast rows).

use dp_bench::timing::{measure, out_path, render_measurements, write_json, Measurement};
use dp_emac::{Emac, FixedEmac, FloatEmac, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::{PositFormat, Quire};
use std::hint::black_box;

/// Dot-product length (the paper's k = 128 reference accumulation count).
const K: usize = 128;

fn patterns(mask: u32, skip: u32) -> Vec<(u32, u32)> {
    let mut s = 0xfeed_f00d_dead_beefu64;
    (0..K)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = (s as u32) & mask;
            let b = ((s >> 32) as u32) & mask;
            (if a == skip { 0 } else { a }, if b == skip { 0 } else { b })
        })
        .collect()
}

fn bench_posit(rows: &mut Vec<Measurement>, n: u32, es: u32) {
    let fmt = PositFormat::new(n, es).unwrap();
    let pv = patterns(fmt.mask(), fmt.nar_bits());
    let label = format!("posit{n}e{es}");

    let mut fast = PositEmac::new(fmt, K as u64);
    rows.push(measure(&format!("{label}_emac_dot{K}"), K as u64, || {
        fast.reset();
        for &(x, y) in &pv {
            fast.mac(black_box(x), black_box(y));
        }
        fast.result()
    }));

    let mut reference = PositEmac::new_reference(fmt, K as u64);
    rows.push(measure(
        &format!("{label}_emac_dot{K}_reference"),
        K as u64,
        || {
            reference.reset();
            for &(x, y) in &pv {
                reference.mac(black_box(x), black_box(y));
            }
            reference.result()
        },
    ));

    let mut quire = Quire::new(fmt, K as u64);
    rows.push(measure(&format!("{label}_quire_dot{K}"), K as u64, || {
        quire.clear();
        for &(x, y) in &pv {
            quire.add_product(black_box(x), black_box(y));
        }
        quire.to_posit()
    }));
}

fn main() {
    let mut rows: Vec<Measurement> = Vec::new();

    for es in [0u32, 1, 2] {
        bench_posit(&mut rows, 8, es);
    }
    // The §IV sweep's 16-bit formats: split-table decode + native
    // (i128 / 256-bit) accumulator vs the bit-field + WideInt reference.
    for es in [0u32, 1, 2] {
        bench_posit(&mut rows, 16, es);
    }
    // Past the split ceiling: no table, WideInt register — fast and
    // reference paths should roughly coincide, proving the fallback did
    // not regress.
    bench_posit(&mut rows, 17, 1);

    for (label, we, wf) in [("float8e4m3", 4u32, 3u32), ("float16e5m10", 5, 10)] {
        let ffmt = FloatFormat::new(we, wf).unwrap();
        let fv = patterns(ffmt.mask(), ffmt.nan_bits());
        let mut ffast = FloatEmac::new(ffmt, K as u64);
        rows.push(measure(&format!("{label}_emac_dot{K}"), K as u64, || {
            ffast.reset();
            for &(x, y) in &fv {
                ffast.mac(black_box(x), black_box(y));
            }
            ffast.result()
        }));
        let mut fref = FloatEmac::new_reference(ffmt, K as u64);
        rows.push(measure(
            &format!("{label}_emac_dot{K}_reference"),
            K as u64,
            || {
                fref.reset();
                for &(x, y) in &fv {
                    fref.mac(black_box(x), black_box(y));
                }
                fref.result()
            },
        ));
    }

    for (label, n, q) in [("fixed8q6", 8u32, 6u32), ("fixed16q8", 16, 8)] {
        let xfmt = FixedFormat::new(n, q).unwrap();
        let xv = patterns((1u32 << n) - 1, 1 << n);
        let mut xe = FixedEmac::new(xfmt, K as u64);
        rows.push(measure(&format!("{label}_emac_dot{K}"), K as u64, || {
            xe.reset();
            for &(x, y) in &xv {
                xe.mac(black_box(x), black_box(y));
            }
            xe.result()
        }));
    }

    println!("{}", render_measurements(&rows));

    // Headline speedups: fast vs reference per format.
    let find = |name: &str| rows.iter().find(|m| m.name == name).unwrap();
    for label in [
        "posit8e0",
        "posit8e1",
        "posit8e2",
        "posit16e0",
        "posit16e1",
        "posit16e2",
        "posit17e1",
        "float8e4m3",
        "float16e5m10",
    ] {
        let fast = find(&format!("{label}_emac_dot{K}"));
        let reference = find(&format!("{label}_emac_dot{K}_reference"));
        println!(
            "{label}: {:.2}x MACs/sec over the pre-LUT reference path",
            reference.ns_per_iter / fast.ns_per_iter
        );
    }

    let path = out_path("emac");
    let meta = [
        ("bench", "emac_throughput".to_string()),
        ("command", "cargo bench --bench emac_throughput".to_string()),
        ("k", K.to_string()),
        (
            "note",
            "elems = MACs; *_reference rows are the pre-LUT bit-field + WideInt datapath (before), \
             matching rows without the suffix are the fast path (after): monolithic LUT at <= 12 \
             bits, split regime-prefix table at 13-16 bits, i128/256-bit native accumulators"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_emac.json");
    println!("\nwrote {}", path.display());
}
