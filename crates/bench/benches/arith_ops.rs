//! Micro-benchmarks of the software arithmetic substrates: posit vs
//! minifloat vs fixed vs native f32 add/mul throughput.
//!
//! Run with `cargo bench --bench arith_ops`. Writes the committed baseline
//! `BENCH_arith_ops.json` at the repository root (`results/smoke/` under
//! `--smoke`).

use dp_bench::timing::{measure, out_path, render_measurements, write_json, Measurement};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::hint::black_box;

const N: usize = 256;

fn operand_patterns(mask: u32, nar: u32) -> Vec<(u32, u32)> {
    let mut s = 0x0123_4567_89ab_cdefu64;
    (0..N)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = (s as u32) & mask;
            let b = ((s >> 32) as u32) & mask;
            (if a == nar { 0 } else { a }, if b == nar { 0 } else { b })
        })
        .collect()
}

fn main() {
    let mut rows: Vec<Measurement> = Vec::new();

    let p8 = PositFormat::new(8, 1).unwrap();
    let ops_p = operand_patterns(p8.mask(), p8.nar_bits());
    rows.push(measure("posit8_mul", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_p {
            acc ^= dp_posit::ops::mul(p8, black_box(x), black_box(y));
        }
        acc
    }));
    rows.push(measure("posit8_add", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_p {
            acc ^= dp_posit::ops::add(p8, black_box(x), black_box(y));
        }
        acc
    }));

    let p16 = PositFormat::new(16, 1).unwrap();
    let ops_p16 = operand_patterns(p16.mask(), p16.nar_bits());
    rows.push(measure("posit16_mul", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_p16 {
            acc ^= dp_posit::ops::mul(p16, black_box(x), black_box(y));
        }
        acc
    }));
    rows.push(measure("posit16_add", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_p16 {
            acc ^= dp_posit::ops::add(p16, black_box(x), black_box(y));
        }
        acc
    }));

    let e4m3 = FloatFormat::new(4, 3).unwrap();
    let ops_f = operand_patterns(e4m3.mask(), e4m3.nan_bits());
    rows.push(measure("minifloat8_mul", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_f {
            acc ^= dp_minifloat::ops::mul(e4m3, black_box(x), black_box(y));
        }
        acc
    }));

    let f16 = FloatFormat::new(5, 10).unwrap();
    let ops_f16 = operand_patterns(f16.mask(), f16.nan_bits());
    rows.push(measure("minifloat16_mul", N as u64, || {
        let mut acc = 0u32;
        for &(x, y) in &ops_f16 {
            acc ^= dp_minifloat::ops::mul(f16, black_box(x), black_box(y));
        }
        acc
    }));

    let q84 = FixedFormat::new(8, 4).unwrap();
    rows.push(measure("fixed8_mul", N as u64, || {
        let mut acc = 0i64;
        for &(x, y) in &ops_p {
            let (xa, ya) = (x as i64 - 128, y as i64 - 128);
            acc ^= q84.mul_round(black_box(xa), black_box(ya));
        }
        acc
    }));

    let q168 = FixedFormat::new(16, 8).unwrap();
    rows.push(measure("fixed16_mul", N as u64, || {
        let mut acc = 0i64;
        for &(x, y) in &ops_p16 {
            let (xa, ya) = (x as i64 - 32768, y as i64 - 32768);
            acc ^= q168.mul_round(black_box(xa), black_box(ya));
        }
        acc
    }));

    let vals: Vec<(f32, f32)> = ops_p
        .iter()
        .map(|&(a, b)| (a as f32 / 64.0 - 1.5, b as f32 / 64.0 - 1.5))
        .collect();
    rows.push(measure("native_f32_mul", N as u64, || {
        let mut acc = 0f32;
        for &(x, y) in &vals {
            acc += black_box(x) * black_box(y);
        }
        acc
    }));

    println!("{}", render_measurements(&rows));

    let path = out_path("arith_ops");
    let meta = [
        ("bench", "arith_ops".to_string()),
        ("command", "cargo bench --bench arith_ops".to_string()),
        ("n", N.to_string()),
        ("note", "elems = scalar add/mul operations".to_string()),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_arith_ops.json");
    println!("\nwrote {}", path.display());
}
