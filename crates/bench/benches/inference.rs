//! Whole-network inference throughput (Iris topology): per-sample EMAC
//! inference vs the batch engine (contiguous weights, per-thread EMAC
//! reuse, sample parallelism), plus the per-op rounding path and the f32
//! baseline.
//!
//! Run with `cargo bench --bench inference`. Writes the committed baseline
//! `BENCH_inference.json` at the repository root.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_bench::timing::{measure, out_path, render_measurements, smoke, write_json, Measurement};
use dp_datasets::iris;
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::hint::black_box;

fn main() {
    let split = iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: if smoke() { 8 } else { 60 },
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );
    let x = split.test.features[0].clone();
    // Batch-traffic workload: the test set cycled to serving scale, so the
    // parallel engine has enough work to amortize thread spawn.
    let batch: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(if smoke() { 96 } else { 2000 })
        .cloned()
        .collect();
    let b = batch.len() as u64;

    let mut rows: Vec<Measurement> = Vec::new();
    let configs = [
        (
            "posit8e0",
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        ),
        (
            "float8e4m3",
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        ),
        (
            "fixed8q6",
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ),
    ];
    for (name, fmt) in configs {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        rows.push(measure(&format!("{name}_emac_per_sample"), 1, || {
            q.infer(black_box(&x))
        }));
        rows.push(measure(&format!("{name}_per_op_per_sample"), 1, || {
            q.infer_inexact(black_box(&x))
        }));
        // Scalar loop over the dataset: fresh EMACs per sample, no threads.
        rows.push(measure(&format!("{name}_scalar_batch{b}"), b, || {
            batch
                .iter()
                .map(|x| q.forward_bits(black_box(x)).len())
                .sum::<usize>()
        }));
        // Batch engine pinned to one thread: isolates EMAC-reuse +
        // contiguous-weight gains from thread parallelism.
        std::env::set_var("DEEP_POSITRON_THREADS", "1");
        rows.push(measure(&format!("{name}_batch{b}_1thread"), b, || {
            q.forward_batch(black_box(&batch)).len()
        }));
        std::env::remove_var("DEEP_POSITRON_THREADS");
        // Batch engine at machine parallelism.
        rows.push(measure(&format!("{name}_batch{b}_parallel"), b, || {
            q.forward_batch(black_box(&batch)).len()
        }));
    }
    rows.push(measure("f32_native_per_sample", 1, || {
        mlp.predict(black_box(&x))
    }));

    println!("{}", render_measurements(&rows));

    let find = |name: &str| rows.iter().find(|m| m.name == name).unwrap();
    for (name, _) in configs {
        let scalar = find(&format!("{name}_scalar_batch{b}"));
        let par = find(&format!("{name}_batch{b}_parallel"));
        println!(
            "{name}: batch engine {:.2}x samples/sec over the scalar loop",
            scalar.ns_per_iter / par.ns_per_iter
        );
    }

    let path = out_path("inference");
    let meta = [
        ("bench", "inference".to_string()),
        ("command", "cargo bench --bench inference".to_string()),
        ("topology", "iris 4-16-3".to_string()),
        ("batch", b.to_string()),
        (
            "threads",
            deep_positron::quantized::batch_threads().to_string(),
        ),
        (
            "note",
            "elems = inference samples; *_scalar_batch* is the per-sample loop (before), \
             *_batch*_parallel is the batch engine (after)"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_inference.json");
    println!("\nwrote {}", path.display());
}
