//! Criterion benchmarks of whole-network EMAC inference per sample
//! (Iris topology) across formats, plus the f32 baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deep_positron::experiments::paper_tasks;
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::time::Duration;

fn bench_inference(c: &mut Criterion) {
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    let x = iris.split.test.features[0].clone();

    let mut g = c.benchmark_group("inference_per_sample");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    let configs = [
        ("posit8e0", NumericFormat::Posit(PositFormat::new(8, 0).unwrap())),
        ("float8e4m3", NumericFormat::Float(FloatFormat::new(4, 3).unwrap())),
        ("fixed8q6", NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap())),
    ];
    for (name, fmt) in configs {
        let q = QuantizedMlp::quantize(&iris.mlp, fmt);
        g.bench_function(format!("{name}_emac"), |b| {
            b.iter(|| q.infer(black_box(&x)))
        });
        g.bench_function(format!("{name}_per_op"), |b| {
            b.iter(|| q.infer_inexact(black_box(&x)))
        });
    }
    g.bench_function("f32_native", |b| {
        b.iter(|| iris.mlp.predict(black_box(&x)))
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
