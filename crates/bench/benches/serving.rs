//! Serving-engine throughput: the persistent `dp_serve` worker pool
//! against the per-call scoped-thread batch engine, plus mixed-format
//! traffic (posit + minifloat + fixed interleaved through one pool) and
//! single-request latency.
//!
//! Run with `cargo bench --bench serving`. Writes the committed baseline
//! `BENCH_serving.json` at the repository root (`results/smoke/` under
//! `--smoke`).

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_bench::timing::{measure, out_path, render_measurements, smoke, write_json, Measurement};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::{ModelKey, ServeEngine};
use std::hint::black_box;

fn main() {
    let split = dp_datasets::iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: if smoke() { 8 } else { 60 },
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );
    let batch: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(if smoke() { 96 } else { 2000 })
        .cloned()
        .collect();
    let b = batch.len() as u64;
    let x = split.test.features[0].clone();

    let configs = [
        (
            "posit8e0",
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        ),
        (
            "float8e4m3",
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        ),
        (
            "fixed8q6",
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ),
    ];

    // One persistent engine serving every format from a single pool.
    let engine = ServeEngine::with_defaults();
    let keys: Vec<(&str, ModelKey, QuantizedMlp)> = configs
        .iter()
        .map(|(name, fmt)| {
            let q = QuantizedMlp::quantize(&mlp, *fmt);
            let key = engine
                .registry()
                .register("iris", q.clone())
                .expect("bench formats have EMAC datapaths");
            (*name, key, q)
        })
        .collect();

    let mut rows: Vec<Measurement> = Vec::new();
    for (name, key, q) in &keys {
        // Per-call scoped-thread batch engine (the fallback path).
        rows.push(measure(&format!("{name}_scoped_batch{b}"), b, || {
            q.forward_batch(black_box(&batch)).len()
        }));
        // Persistent pool: admission + chunking + completion handle.
        rows.push(measure(&format!("{name}_engine_batch{b}"), b, || {
            engine
                .submit_forward(key, black_box(batch.clone()))
                .expect("registered model")
                .wait()
                .expect("serving job")
                .len()
        }));
        // Single-request round trip through queue + handle (latency).
        rows.push(measure(&format!("{name}_engine_single"), 1, || {
            engine
                .submit_forward_one(key, black_box(x.clone()))
                .expect("registered model")
                .wait()
                .expect("serving job")
                .len()
        }));
    }

    // Mixed traffic: all three formats admitted as one interleaved burst
    // of small batches against the same pool — the heterogeneous serving
    // scenario none of the per-call entry points can express.
    let requests = 12usize;
    let slice = batch.len() / requests;
    // The burst serves exactly requests × slice samples (the tail of
    // `batch` that does not fill a slice is left out of the workload).
    let burst_samples = (requests * slice) as u64;
    rows.push(measure("mixed3_engine_burst", burst_samples, || {
        let pending: Vec<_> = (0..requests)
            .map(|r| {
                let (_, key, _) = &keys[r % keys.len()];
                let xs = batch[r * slice..(r + 1) * slice].to_vec();
                engine.submit_forward(key, xs).expect("registered model")
            })
            .collect();
        pending
            .into_iter()
            .map(|h| h.wait().expect("serving job").len())
            .sum::<usize>()
    }));

    println!("{}", render_measurements(&rows));

    let find = |name: &str| rows.iter().find(|m| m.name == name).unwrap();
    for (name, _, _) in &keys {
        let scoped = find(&format!("{name}_scoped_batch{b}"));
        let engine_row = find(&format!("{name}_engine_batch{b}"));
        println!(
            "{name}: persistent pool at {:.2}x the scoped-thread engine",
            scoped.ns_per_iter / engine_row.ns_per_iter
        );
    }

    let stats = engine.stats();
    let path = out_path("serving");
    let meta = [
        ("bench", "serving".to_string()),
        ("command", "cargo bench --bench serving".to_string()),
        ("topology", "iris 4-16-3".to_string()),
        ("batch", b.to_string()),
        ("workers", stats.workers.to_string()),
        ("jobs_run", stats.jobs_run.to_string()),
        (
            "note",
            "elems = inference samples; *_scoped_batch* is the per-call scoped-thread engine \
             (before), *_engine_batch* the persistent dp_serve pool (after); mixed3_engine_burst \
             interleaves posit/minifloat/fixed requests through one pool"
                .to_string(),
        ),
    ];
    write_json(&path, &meta, &rows).expect("write BENCH_serving.json");
    println!("\nwrote {}", path.display());
}
