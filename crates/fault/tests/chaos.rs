//! Deterministic chaos suite: drives the full gateway + engine stack with
//! `dp_fault` plans installed and asserts every injected failure resolves
//! to a **typed** error on exactly the affected handles — no hangs (every
//! wait in this file is a `wait_timeout`), no collateral damage, and the
//! same seed reproduces the same failure sequence.
//!
//! The fault plan is process-global, so every test takes the `serial()`
//! lock (with poison recovery — a failing chaos test must not cascade).

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, QuantizedMlp};
use dp_fault::{points, FaultAction, FaultPlan, Trigger};
use dp_gateway::{
    Admission, Gateway, GatewayBuilder, GatewayError, OverloadPolicy, RateLimit, SubmitOptions,
};
use dp_posit::PositFormat;
use dp_serve::{JobError, PanicBudget, WatchdogConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Generous bound for "this resolves promptly"; a hang fails the test
/// instead of wedging the suite.
const WAIT: Duration = Duration::from_secs(10);

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(31).split(50, 31).normalized();
    let mut mlp = Mlp::new(&[4, 8, 3], 31);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.02,
            seed: 31,
        },
    );
    (mlp, split)
}

fn quantized(mlp: &Mlp) -> QuantizedMlp {
    QuantizedMlp::quantize(
        mlp,
        deep_positron::NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
    )
}

fn batch(split: &dp_datasets::TrainTest, n: usize) -> Vec<Vec<f32>> {
    split
        .test
        .features
        .iter()
        .cycle()
        .take(n)
        .cloned()
        .collect()
}

/// Tight supervision for fast chaos turnaround: 60 ms stall timeout,
/// 10 ms watchdog poll.
fn watchdog() -> WatchdogConfig {
    WatchdogConfig {
        stall_timeout: Duration::from_millis(60),
        poll_interval: Duration::from_millis(10),
    }
}

fn small_builder() -> GatewayBuilder {
    Gateway::builder()
        .workers(1)
        .chunk_samples(4)
        .queue_capacity(64)
}

#[test]
fn panic_storm_trips_degraded_mode_and_log_is_deterministic() {
    let _guard = serial();
    // First three chunk evaluations for "iris" panic; budget allows two
    // panics per window, so the third flips the engine to degraded.
    dp_fault::install(FaultPlan::seeded(7).inject_for_model(
        points::PANIC_IN_CHUNK,
        "iris",
        Trigger::FirstN(3),
        FaultAction::Panic,
    ));
    let (mlp, split) = trained_iris();
    let gw = small_builder()
        .panic_budget(PanicBudget {
            max_panics: 2,
            window: Duration::from_secs(30),
        })
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    let xs = batch(&split, 4); // one chunk per request

    // Three sequential requests, three typed panic failures.
    for i in 0..3 {
        let h = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
        assert_eq!(
            h.wait_timeout(WAIT),
            Some(Err(GatewayError::Job(JobError::Panicked))),
            "request {i} should fail with the injected panic"
        );
    }
    // The third panic exceeds the budget; the flag is set by the worker
    // loop right after the handle resolves, so allow it a moment.
    let t0 = Instant::now();
    while !gw.is_degraded() && t0.elapsed() < WAIT {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(gw.is_degraded(), "3 panics > budget of 2 must degrade");
    assert!(matches!(
        gw.try_submit_forward(&key, xs.clone()),
        Admission::Degraded
    ));
    let snap = gw.snapshot();
    assert!(snap.degraded);
    assert_eq!(snap.failed, 3);
    assert_eq!(snap.rejected_degraded, 1);

    // The fired-fault log pins the exact failure sequence.
    let log = dp_fault::take_log();
    let fired: Vec<(u64, &str, u64)> = log
        .iter()
        .map(|f| (f.seq, f.point.as_str(), f.hit))
        .collect();
    assert_eq!(
        fired,
        vec![
            (1, points::PANIC_IN_CHUNK, 1),
            (2, points::PANIC_IN_CHUNK, 2),
            (3, points::PANIC_IN_CHUNK, 3),
        ]
    );

    // Operator reset: the gateway serves again (the FirstN(3) rule is
    // exhausted, so this evaluation runs clean).
    gw.reset_degraded();
    let h = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    assert!(matches!(h.wait_timeout(WAIT), Some(Ok(_))));
    dp_fault::clear();
}

#[test]
fn stalled_worker_is_respawned_and_fails_only_the_stuck_request() {
    let _guard = serial();
    // The first "iris" chunk wedges its worker for 400 ms — far past the
    // 60 ms stall timeout.
    dp_fault::install(FaultPlan::seeded(11).inject_for_model(
        points::STALL_WORKER,
        "iris",
        Trigger::OnHit(1),
        FaultAction::Sleep(400),
    ));
    let (mlp, split) = trained_iris();
    let gw = small_builder().watchdog(watchdog()).build();
    let q = quantized(&mlp);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 4);

    // The stuck request fails with the typed stall verdict…
    let stuck = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    assert_eq!(
        stuck.wait_timeout(WAIT),
        Some(Err(GatewayError::Job(JobError::Stalled)))
    );
    // …and the respawned worker serves the next request bit-identically.
    let healthy = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(healthy.wait_timeout(WAIT), Some(Ok(direct)));

    // Let the wedged thread finish its sleep, then check accounting:
    // the abandoned worker must NOT double-count its job.
    std::thread::sleep(Duration::from_millis(500));
    let stats = gw.engine().stats();
    assert_eq!(stats.stalled, 1);
    assert_eq!(stats.respawned, 1);
    assert_eq!(
        stats.jobs_run, 2,
        "stalled job settles once; the abandoned thread adds nothing"
    );
    let snap = gw.snapshot();
    assert_eq!(snap.worker_stalled, 1);
    assert_eq!(snap.workers_respawned, 1);
    assert!(!snap.degraded, "a stall is not a panic");
    dp_fault::clear();
}

#[test]
fn deadline_expiry_vs_dispatch_race_always_resolves_typed() {
    let _guard = serial();
    // Every dispatch is delayed 30 ms, so a 10 ms deadline reliably loses
    // the race and a 10 s deadline reliably wins it — and either way the
    // handle resolves to a typed outcome.
    dp_fault::install(FaultPlan::seeded(23).inject(
        points::DELAY_DISPATCH,
        Trigger::Always,
        FaultAction::Sleep(30),
    ));
    let (mlp, split) = trained_iris();
    let gw = small_builder().build();
    let q = quantized(&mlp);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 4);
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();

    let doomed: Vec<_> = (0..4)
        .map(|_| {
            gw.try_submit_forward_opts(
                &key,
                xs.clone(),
                SubmitOptions::new().deadline_in(Duration::from_millis(10)),
            )
            .expect_admitted()
        })
        .collect();
    let viable: Vec<_> = (0..4)
        .map(|_| {
            gw.try_submit_forward_opts(
                &key,
                xs.clone(),
                SubmitOptions::new().deadline_in(Duration::from_secs(10)),
            )
            .expect_admitted()
        })
        .collect();
    for h in &doomed {
        assert_eq!(
            h.wait_timeout(WAIT),
            Some(Err(GatewayError::DeadlineExceeded))
        );
    }
    for h in &viable {
        assert_eq!(h.wait_timeout(WAIT), Some(Ok(direct.clone())));
    }
    gw.wait_idle();
    let snap = gw.snapshot();
    assert_eq!(snap.deadline_exceeded, 4);
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.per_model[0].expired, 4);
    // The dispatcher logged a delay firing per popped entry.
    assert_eq!(dp_fault::take_log().len(), 8);
    dp_fault::clear();
}

#[test]
fn conservation_holds_under_2x_overload_with_expiry_and_cancel() {
    let _guard = serial();
    dp_fault::clear(); // pure overload run; counters do the verifying
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .queue_capacity(8)
        .policy(OverloadPolicy::ShedNewest)
        .rate_limit(
            "iris",
            // 64 tokens, no refill: exactly enough for the admitted half
            // (8 requests × 4 samples) plus the transient charge of the
            // shed half, which refunds immediately.
            RateLimit {
                burst: 64.0,
                samples_per_sec: 0.0,
            },
        )
        .build();
    let q = quantized(&mlp);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 4);
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();

    // 2× ring capacity against a paused dispatcher: half admitted, half
    // shed. Of the admitted, 2 carry an already-passed deadline and 2 are
    // cancelled while queued.
    gw.pause_dispatch();
    let cap = gw.queue_capacity();
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..2 * cap {
        let opts = if i == 1 || i == 2 {
            SubmitOptions::new().deadline(Instant::now())
        } else {
            SubmitOptions::new()
        };
        match gw.try_submit_forward_opts(&key, xs.clone(), opts) {
            Admission::Admitted(h) => admitted.push(h),
            Admission::QueueFull => shed += 1,
            other => panic!("unexpected verdict: {other:?}"),
        }
    }
    assert_eq!(admitted.len(), cap);
    assert_eq!(shed, cap);
    admitted[4].cancel();
    admitted[5].cancel();
    // Cancelled-while-queued handles resolve before dispatch even resumes.
    assert_eq!(admitted[4].poll(), Some(Err(GatewayError::Cancelled)));
    gw.resume_dispatch();

    let mut ok = 0u64;
    let mut expired = 0u64;
    let mut cancelled = 0u64;
    for h in &admitted {
        match h.wait_timeout(WAIT).expect("no admitted handle may hang") {
            Ok(bits) => {
                assert_eq!(bits, direct);
                ok += 1;
            }
            Err(GatewayError::DeadlineExceeded) => expired += 1,
            Err(GatewayError::Cancelled) => cancelled += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(expired, 2);
    assert_eq!(cancelled, 2);
    assert_eq!(ok, cap as u64 - 4);

    gw.wait_idle();
    let snap = gw.snapshot();
    // Admission conservation: submitted = admitted + shed.
    assert_eq!(snap.submitted, 2 * cap as u64);
    assert_eq!(snap.admitted + snap.shed_total(), snap.submitted);
    // Outcome conservation: every admitted request resolved exactly once.
    assert_eq!(
        snap.completed + snap.deadline_exceeded + snap.cancelled + snap.failed,
        snap.admitted
    );
    assert_eq!(snap.deadline_exceeded, 2);
    assert_eq!(snap.cancelled, 2);
    assert_eq!(snap.failed, 0);
    // Every non-completed request refunded its tokens, so exactly the
    // completed samples (16) remain charged against the non-refilling
    // 64-token bucket: a 48-sample probe squeaks in, one more sample does
    // not.
    let remaining = 64 - snap.samples_completed as usize;
    assert_eq!(remaining, 48);
    let probe = gw.try_submit_forward(&key, batch(&split, remaining));
    assert!(probe.is_admitted(), "refunds must restore the budget");
    assert!(matches!(
        gw.try_submit_forward(&key, batch(&split, 1)),
        Admission::RateLimited
    ));
    probe.expect_admitted().wait_timeout(WAIT).unwrap().unwrap();
}

#[test]
fn dropped_completion_times_out_then_cancel_recovers_the_handle() {
    let _guard = serial();
    // The first "iris" chunk evaluates fine but its completion is dropped
    // on the floor — the classic lost-wakeup. wait_timeout must return
    // None (not hang), and cancel() must recover the handle.
    dp_fault::install(FaultPlan::seeded(31).inject_for_model(
        points::DROP_COMPLETION,
        "iris",
        Trigger::OnHit(1),
        FaultAction::DropCompletion,
    ));
    let (mlp, split) = trained_iris();
    let gw = small_builder().build();
    let q = quantized(&mlp);
    let key = gw.registry().register("iris", q.clone()).unwrap();
    let xs = batch(&split, 4);

    let lost = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    assert_eq!(
        lost.wait_timeout(Duration::from_millis(300)),
        None,
        "a dropped completion must surface as a timeout, not a hang"
    );
    lost.cancel();
    assert_eq!(
        lost.wait_timeout(WAIT),
        Some(Err(GatewayError::Cancelled)),
        "cancel recovers a handle whose completion was lost"
    );
    // Exactly one fault fired, and later traffic is untouched.
    assert_eq!(dp_fault::log().len(), 1);
    let healthy = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(healthy.wait_timeout(WAIT), Some(Ok(direct)));
    dp_fault::clear();
}

#[test]
fn shutdown_under_wedged_load_is_bounded_by_the_drain_deadline() {
    let _guard = serial();
    // Every chunk wedges its worker for 1.5 s; the watchdog respawns at
    // 60 ms, and the dispatcher may hand the engine only one chunk at a
    // time — so draining the backlog would take seconds. The 150 ms drain
    // deadline must cut that short with typed Closed verdicts.
    dp_fault::install(FaultPlan::seeded(43).inject(
        points::STALL_WORKER,
        Trigger::Always,
        FaultAction::Sleep(1500),
    ));
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(1)
        .chunk_samples(4)
        .queue_capacity(16)
        .max_inflight_chunks(1)
        .watchdog(watchdog())
        .drain_deadline(Duration::from_millis(150))
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    let xs = batch(&split, 4);

    gw.pause_dispatch();
    let handles: Vec<_> = (0..6)
        .map(|_| gw.try_submit_forward(&key, xs.clone()).expect_admitted())
        .collect();
    let t0 = Instant::now();
    gw.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "bounded drain took {elapsed:?}"
    );

    // Every handle resolved to a typed outcome — dispatched ones to the
    // stall verdict, drain-aborted ones to Closed; none hang.
    let mut stalled = 0usize;
    let mut closed = 0usize;
    for h in &handles {
        match h
            .wait_timeout(WAIT)
            .expect("no handle may hang at shutdown")
        {
            Err(GatewayError::Job(JobError::Stalled)) => stalled += 1,
            Err(GatewayError::Closed) => closed += 1,
            other => panic!("unexpected shutdown outcome: {other:?}"),
        }
    }
    assert!(stalled >= 1, "at least the first request was dispatched");
    assert!(closed >= 1, "the drain deadline must abort the tail");
    assert_eq!(stalled + closed, handles.len());
    dp_fault::clear();
    // Give the last wedged (detached) sleeper time to drain before the
    // next test installs a plan.
    std::thread::sleep(Duration::from_millis(200));
}

#[test]
fn seeded_probabilistic_storm_reproduces_the_exact_outcome_sequence() {
    let _guard = serial();
    let (mlp, split) = trained_iris();
    let q = quantized(&mlp);
    let xs = batch(&split, 4);

    // One sequential pass: each request is a single chunk that panics
    // with p = 0.5, drawn from the plan's seeded RNG. Sequential waits
    // make hit order — and therefore the RNG stream — deterministic.
    let run = |seed: u64| -> (Vec<bool>, Vec<u64>) {
        dp_fault::install(FaultPlan::seeded(seed).inject_for_model(
            points::PANIC_IN_CHUNK,
            "iris",
            Trigger::WithProbability(0.5),
            FaultAction::Panic,
        ));
        let gw = small_builder().build();
        let key = gw.registry().register("iris", q.clone()).unwrap();
        let outcomes: Vec<bool> = (0..12)
            .map(|_| {
                let h = gw.try_submit_forward(&key, xs.clone()).expect_admitted();
                match h.wait_timeout(WAIT).expect("typed outcome, never a hang") {
                    Ok(_) => true,
                    Err(GatewayError::Job(JobError::Panicked)) => false,
                    Err(other) => panic!("unexpected error: {other}"),
                }
            })
            .collect();
        let hits = dp_fault::take_log().into_iter().map(|f| f.hit).collect();
        dp_fault::clear();
        drop(gw);
        (outcomes, hits)
    };

    let (a_outcomes, a_hits) = run(1234);
    let (b_outcomes, b_hits) = run(1234);
    let (c_outcomes, _) = run(987_654_321);
    assert_eq!(a_outcomes, b_outcomes, "same seed, same failure sequence");
    assert_eq!(a_hits, b_hits);
    assert!(
        a_outcomes.iter().any(|&ok| ok) && a_outcomes.iter().any(|&ok| !ok),
        "p=0.5 over 12 requests should mix outcomes: {a_outcomes:?}"
    );
    assert_ne!(a_outcomes, c_outcomes, "different seeds should diverge");
}

#[test]
fn trace_terminals_partition_matches_counters_under_chaos() {
    let _guard = serial();
    // Chaos conservation: injected chunk panics + overload shed + expiry
    // + cancellation in one run, with the flight recorder sampling every
    // request. The recorder's terminal events must partition exactly into
    // the Prometheus counters — no double terminals, nothing unaccounted.
    // (Stalls surface through the same ChunkGuard path as failures, so
    // the panic injection covers that accounting seam too.)
    dp_fault::install(dp_fault::FaultPlan::seeded(77).inject_for_model(
        points::PANIC_IN_CHUNK,
        "iris",
        Trigger::FirstN(2),
        FaultAction::Panic,
    ));
    let (mlp, split) = trained_iris();
    let gw = Gateway::builder()
        .workers(2)
        .chunk_samples(4)
        .queue_capacity(8)
        .policy(OverloadPolicy::ShedNewest)
        .trace(dp_gateway::TraceConfig::every_request())
        .build();
    let key = gw.registry().register("iris", quantized(&mlp)).unwrap();
    let xs = batch(&split, 4); // one chunk per request

    gw.pause_dispatch();
    let cap = gw.queue_capacity();
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..2 * cap {
        let opts = if i == 1 || i == 2 {
            SubmitOptions::new().deadline(Instant::now())
        } else {
            SubmitOptions::new()
        };
        match gw.try_submit_forward_opts(&key, xs.clone(), opts) {
            Admission::Admitted(h) => admitted.push(h),
            Admission::QueueFull => shed += 1,
            other => panic!("unexpected verdict: {other:?}"),
        }
    }
    admitted[4].cancel();
    admitted[5].cancel();
    gw.resume_dispatch();
    for h in &admitted {
        h.wait_timeout(WAIT)
            .expect("no admitted handle may hang")
            .ok();
    }
    gw.close();

    let snap = gw.snapshot();
    let stats = gw.recorder().expect("tracing is on").stats();
    use dp_gateway::TerminalKind;
    assert_eq!(stats.begun, cap as u64 + shed);
    assert_eq!(stats.terminals_total(), stats.begun);
    assert_eq!(stats.dup_terminals, 0);
    assert_eq!(stats.terminal(TerminalKind::Completed), snap.completed);
    assert_eq!(stats.terminal(TerminalKind::Failed), snap.failed);
    assert_eq!(
        stats.terminal(TerminalKind::Expired),
        snap.deadline_exceeded
    );
    assert_eq!(stats.terminal(TerminalKind::Cancelled), snap.cancelled);
    assert_eq!(
        stats.terminal(TerminalKind::Shed),
        snap.shed_queue_full + snap.shed_evicted
    );
    // The injected panics actually fired and were accounted as failures.
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.deadline_exceeded, 2);
    assert_eq!(snap.cancelled, 2);
    dp_fault::clear();
}
