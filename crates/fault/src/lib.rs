//! # dp-fault — deterministic, seeded fault injection for the serving stack
//!
//! The failure paths the serving layers grew (shed verdicts, panic
//! isolation, `EngineClosed`, and now deadlines, stalled-worker detection
//! and degraded mode) used to be exercisable only by racing real threads.
//! This crate makes them **deterministic**: code under test declares named
//! *failure points* (via the `fault-inject` features of `dp_serve` and
//! `dp_gateway`), and a test installs a [`FaultPlan`] saying which points
//! misbehave, when, and how.
//!
//! * **Failure points** ([`points`]) — stable string names compiled into
//!   the pool, dispatcher and chunk-evaluation seams:
//!   [`points::PANIC_IN_CHUNK`], [`points::STALL_WORKER`],
//!   [`points::DELAY_DISPATCH`], [`points::DROP_COMPLETION`]. Without the
//!   `fault-inject` feature the hooks compile to nothing; with it but no
//!   plan installed they are a single relaxed atomic load.
//! * **[`FaultPlan`] DSL** — rules built from a point, an optional
//!   per-model scope, a [`Trigger`] (k-th hit, every n-th, first n,
//!   seeded probability, always) and a [`FaultAction`] (panic, sleep,
//!   drop the completion).
//! * **Determinism** — probabilistic triggers draw from a xorshift RNG
//!   seeded by the plan, hit counters are per-rule, and every fired fault
//!   is appended to a process-wide log ([`take_log`]) so a test can
//!   assert the exact failure sequence reproduces across runs.
//!
//! The plan is process-global (`install`/[`clear`]); tests that install
//! plans must serialize among themselves (the chaos suite in this crate's
//! `tests/` directory holds a lock for exactly that).
//!
//! ```
//! use dp_fault::{points, FaultAction, FaultPlan, Trigger};
//!
//! let plan = FaultPlan::seeded(42)
//!     // Third chunk evaluated for the "iris" model panics.
//!     .inject_for_model(
//!         points::PANIC_IN_CHUNK,
//!         "iris",
//!         Trigger::OnHit(3),
//!         FaultAction::Panic,
//!     )
//!     // Every dispatch is delayed 5 ms (lets deadline races reproduce).
//!     .inject(
//!         points::DELAY_DISPATCH,
//!         Trigger::Always,
//!         FaultAction::Sleep(5),
//!     );
//! dp_fault::install(plan);
//! // … drive the gateway/engine, assert on typed errors …
//! dp_fault::clear();
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// Stable names of the failure points compiled into the serving stack.
///
/// | point | seam | meaning |
/// |---|---|---|
/// | `panic_in_chunk` | chunk evaluation (inside the caller's per-chunk closure, within its accounting guard) | the chunk's evaluation panics (exercises panic isolation and the panic budget) |
/// | `stall_worker` | pool worker loop (`dp_serve`) | the worker sleeps mid-job (exercises heartbeats and the watchdog) |
/// | `delay_dispatch` | gateway dispatcher (`dp_gateway`) | dispatch of a popped ring entry is delayed (exercises deadline expiry) |
/// | `drop_completion` | chunk completion (`dp_serve` job closure) | the finished chunk's completion is silently dropped (exercises `wait_timeout` + cancellation) |
pub mod points {
    /// Chunk evaluation panics inside a pool worker.
    pub const PANIC_IN_CHUNK: &str = "panic_in_chunk";
    /// A pool worker sleeps mid-job, looking wedged to the watchdog.
    pub const STALL_WORKER: &str = "stall_worker";
    /// The gateway dispatcher sleeps before dispatching a popped entry.
    pub const DELAY_DISPATCH: &str = "delay_dispatch";
    /// A finished chunk's completion is dropped instead of delivered.
    pub const DROP_COMPLETION: &str = "drop_completion";
}

/// What a fired fault does at its failure point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the point (`injected fault: <point>`).
    Panic,
    /// Sleep this many **milliseconds** before continuing (a stalled
    /// worker or delayed dispatch, depending on the point).
    Sleep(u64),
    /// Instruct the hook's caller to drop the completion it was about to
    /// deliver (only meaningful at [`points::DROP_COMPLETION`]-shaped
    /// seams; elsewhere it is a no-op).
    DropCompletion,
}

/// When a rule fires, counted over the **hits that match the rule**
/// (point and scope), 1-based.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every matching hit.
    Always,
    /// Exactly the k-th matching hit (1-based), once.
    OnHit(u64),
    /// Every n-th matching hit (n, 2n, 3n, …).
    EveryNth(u64),
    /// The first n matching hits.
    FirstN(u64),
    /// Each matching hit independently with probability `p`, drawn from
    /// the plan's seeded RNG — deterministic for a given seed and hit
    /// order.
    WithProbability(f64),
}

/// One injection rule: point + optional model scope + trigger + action.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The failure-point name this rule arms (see [`points`]).
    pub point: String,
    /// When set, the rule only matches hits carrying this scope (the
    /// serving layers pass the logical model name).
    pub scope: Option<String>,
    /// When the rule fires among its matching hits.
    pub trigger: Trigger,
    /// What happens when it fires.
    pub action: FaultAction,
}

/// A deterministic injection plan: a seed plus an ordered rule list.
///
/// Rules are evaluated in insertion order per hit; the **first** rule that
/// matches and whose trigger fires wins (its action is executed and
/// logged), so narrow scoped rules should be inserted before broad ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan whose probabilistic triggers draw from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an unscoped rule (matches every hit of `point`).
    pub fn inject(mut self, point: &str, trigger: Trigger, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            scope: None,
            trigger,
            action,
        });
        self
    }

    /// Adds a rule that only matches hits of `point` carrying `model` as
    /// their scope.
    pub fn inject_for_model(
        mut self,
        point: &str,
        model: &str,
        trigger: Trigger,
        action: FaultAction,
    ) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            scope: Some(model.to_string()),
            trigger,
            action,
        });
        self
    }

    /// The configured rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// One fired fault, as recorded in the process-wide log.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredFault {
    /// Global 1-based sequence number of this firing.
    pub seq: u64,
    /// The failure point that fired.
    pub point: String,
    /// The scope the hit carried (model name), if any.
    pub scope: Option<String>,
    /// Which matching hit of the winning rule this was (1-based).
    pub hit: u64,
    /// The action that was executed.
    pub action: FaultAction,
}

/// Minimal xorshift64* — deterministic, dependency-free.
#[derive(Debug)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // 0 is a fixed point of xorshift; displace it.
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct ArmedRule {
    rule: FaultRule,
    /// Matching hits seen so far (point + scope matched).
    hits: AtomicU64,
}

struct ActivePlan {
    rules: Vec<ArmedRule>,
    rng: Mutex<XorShift64>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<ActivePlan>> = RwLock::new(None);
static LOG: Mutex<Vec<FiredFault>> = Mutex::new(Vec::new());
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` process-wide (replacing any previous plan) and clears
/// the fired-fault log. Hit counters start at zero.
pub fn install(plan: FaultPlan) {
    let active = ActivePlan {
        rules: plan
            .rules
            .into_iter()
            .map(|rule| ArmedRule {
                rule,
                hits: AtomicU64::new(0),
            })
            .collect(),
        rng: Mutex::new(XorShift64::new(plan.seed)),
    };
    *PLAN.write().expect("fault plan lock") = Some(active); // panic-ok: see `trip`
    LOG.lock().expect("fault log lock").clear(); // panic-ok: see `trip`
                                                 // relaxed-ok: (audited, was SeqCst) the plan is published through the
                                                 // PLAN RwLock; SEQ and ACTIVE carry no data of their own, so no
                                                 // ordering between them is load-bearing (same for `clear`).
    SEQ.store(0, Ordering::Relaxed);
    // relaxed-ok: fast-path gate only — a stale read costs or skips one
    // RwLock acquisition, and `trip` re-checks under the lock anyway.
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes the installed plan; every failure point goes back to a single
/// (false) atomic load. The fired-fault log is left intact for
/// post-mortem assertions — [`take_log`] drains it.
pub fn clear() {
    ACTIVE.store(false, Ordering::Relaxed); // relaxed-ok: see `install`
    *PLAN.write().expect("fault plan lock") = None; // panic-ok: see `trip`
}

/// Whether a plan is currently installed.
pub fn is_active() -> bool {
    // relaxed-ok: advisory fast-path gate; see `install`.
    ACTIVE.load(Ordering::Relaxed)
}

/// Drains and returns the fired-fault log (in firing order).
pub fn take_log() -> Vec<FiredFault> {
    // panic-ok: see `trip`
    std::mem::take(&mut *LOG.lock().expect("fault log lock"))
}

/// A copy of the fired-fault log without draining it.
pub fn log() -> Vec<FiredFault> {
    LOG.lock().expect("fault log lock").clone() // panic-ok: see `trip`
}

/// Evaluates a hit of `point` (with an optional model `scope`) against
/// the installed plan **and executes** the winning action:
/// [`FaultAction::Panic`] panics, [`FaultAction::Sleep`] sleeps, and
/// [`FaultAction::DropCompletion`] returns `true` so the caller drops the
/// completion it was about to deliver. Returns `false` when nothing fired.
///
/// This is the function the `fault-inject` hook shims in `dp_serve` /
/// `dp_gateway` call; it is also usable directly from tests.
///
/// # Panics
///
/// By design, when the winning action is [`FaultAction::Panic`].
pub fn apply(point: &str, scope: Option<&str>) -> bool {
    // relaxed-ok: advisory fast-path gate; see `install`.
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let Some(fired) = trip(point, scope) else {
        return false;
    };
    match fired {
        // panic-ok: the injected action *is* a panic — that is the whole
        // point of the failure plan; callers opted in by installing it.
        FaultAction::Panic => panic!("injected fault: {point}"),
        FaultAction::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            false
        }
        FaultAction::DropCompletion => true,
    }
}

/// Like [`apply`] but only does the bookkeeping: returns the action that
/// fired (recording it in the log) without executing it.
pub fn trip(point: &str, scope: Option<&str>) -> Option<FaultAction> {
    // relaxed-ok: advisory fast-path gate; see `install`.
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    // panic-ok: the lock guards plain Vec/Option state whose critical
    // sections cannot panic; poisoning would mean the harness itself is
    // already broken mid-unwind, and hiding that would mask the bug.
    let plan = PLAN.read().expect("fault plan lock");
    let plan = plan.as_ref()?;
    for armed in &plan.rules {
        if armed.rule.point != point {
            continue;
        }
        if let Some(want) = &armed.rule.scope {
            if scope != Some(want.as_str()) {
                continue;
            }
        }
        // relaxed-ok: (audited, was SeqCst) the RMW alone makes hit
        // numbers unique and monotone per rule; nothing orders against it.
        let hit = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match armed.rule.trigger {
            Trigger::Always => true,
            Trigger::OnHit(k) => hit == k,
            Trigger::EveryNth(n) => n > 0 && hit % n == 0,
            Trigger::FirstN(n) => hit <= n,
            // panic-ok: see the PLAN lock note above
            Trigger::WithProbability(p) => plan.rng.lock().expect("fault rng lock").next_f64() < p,
        };
        if fires {
            // relaxed-ok: (audited, was SeqCst) the RMW alone makes seq
            // unique; log order comes from the LOG lock, which SeqCst
            // never guaranteed either (seq is drawn before the lock).
            let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
            // panic-ok: see the PLAN lock note above
            LOG.lock().expect("fault log lock").push(FiredFault {
                seq,
                point: point.to_string(),
                scope: scope.map(str::to_string),
                hit,
                action: armed.rule.action,
            });
            return Some(armed.rule.action);
        }
        // A matching rule that did not fire still consumed the hit; later
        // rules get their own count. Continue so broader rules can fire.
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The plan is process-global; unit tests serialize on this.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_points_do_nothing() {
        let _guard = serial();
        clear();
        assert!(!is_active());
        assert!(!apply(points::PANIC_IN_CHUNK, None));
        assert_eq!(trip(points::STALL_WORKER, Some("iris")), None);
    }

    #[test]
    fn on_hit_fires_exactly_once_at_k() {
        let _guard = serial();
        install(FaultPlan::seeded(1).inject(
            points::DROP_COMPLETION,
            Trigger::OnHit(3),
            FaultAction::DropCompletion,
        ));
        let fired: Vec<bool> = (0..5)
            .map(|_| apply(points::DROP_COMPLETION, None))
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        let log = take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].hit, 3);
        assert_eq!(log[0].seq, 1);
        clear();
    }

    #[test]
    fn scoped_rules_only_match_their_model() {
        let _guard = serial();
        install(FaultPlan::seeded(1).inject_for_model(
            points::DROP_COMPLETION,
            "iris",
            Trigger::Always,
            FaultAction::DropCompletion,
        ));
        assert!(!apply(points::DROP_COMPLETION, Some("wbc")));
        assert!(!apply(points::DROP_COMPLETION, None));
        assert!(apply(points::DROP_COMPLETION, Some("iris")));
        // Only matching hits advanced the rule's counter.
        assert_eq!(take_log().len(), 1);
        clear();
    }

    #[test]
    fn first_n_and_every_nth_count_matching_hits() {
        let _guard = serial();
        install(
            FaultPlan::seeded(1)
                .inject(
                    points::DROP_COMPLETION,
                    Trigger::FirstN(2),
                    FaultAction::DropCompletion,
                )
                .inject(
                    points::DELAY_DISPATCH,
                    Trigger::EveryNth(2),
                    FaultAction::DropCompletion,
                ),
        );
        let drops: Vec<bool> = (0..4)
            .map(|_| apply(points::DROP_COMPLETION, None))
            .collect();
        assert_eq!(drops, vec![true, true, false, false]);
        let delays: Vec<bool> = (0..4)
            .map(|_| apply(points::DELAY_DISPATCH, None))
            .collect();
        assert_eq!(delays, vec![false, true, false, true]);
        clear();
    }

    #[test]
    fn seeded_probability_reproduces_exactly() {
        let _guard = serial();
        let run = |seed: u64| -> Vec<u64> {
            install(FaultPlan::seeded(seed).inject(
                points::DROP_COMPLETION,
                Trigger::WithProbability(0.4),
                FaultAction::DropCompletion,
            ));
            for _ in 0..64 {
                apply(points::DROP_COMPLETION, None);
            }
            let log = take_log();
            clear();
            log.into_iter().map(|f| f.hit).collect()
        };
        let a = run(123);
        let b = run(123);
        let c = run(456);
        assert_eq!(a, b, "same seed must reproduce the same firing sequence");
        assert!(!a.is_empty() && a.len() < 64, "p=0.4 over 64 hits: {a:?}");
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn first_matching_rule_wins_but_misses_fall_through() {
        let _guard = serial();
        install(
            FaultPlan::seeded(1)
                .inject_for_model(
                    points::DROP_COMPLETION,
                    "iris",
                    Trigger::OnHit(2),
                    FaultAction::DropCompletion,
                )
                .inject(
                    points::DROP_COMPLETION,
                    Trigger::Always,
                    FaultAction::DropCompletion,
                ),
        );
        // Hit 1: scoped rule matches but doesn't fire (k=2); broad rule fires.
        assert!(apply(points::DROP_COMPLETION, Some("iris")));
        // Hit 2: scoped rule fires first.
        assert!(apply(points::DROP_COMPLETION, Some("iris")));
        let log = take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].hit, 2);
        clear();
    }

    #[test]
    fn sleep_action_delays_and_returns_false() {
        let _guard = serial();
        install(FaultPlan::seeded(1).inject(
            points::STALL_WORKER,
            Trigger::OnHit(1),
            FaultAction::Sleep(20),
        ));
        let t0 = std::time::Instant::now();
        assert!(!apply(points::STALL_WORKER, None));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        clear();
    }

    #[test]
    #[should_panic(expected = "injected fault: panic_in_chunk")]
    fn panic_action_panics_with_point_name() {
        let _guard = serial();
        install(FaultPlan::seeded(1).inject(
            points::PANIC_IN_CHUNK,
            Trigger::Always,
            FaultAction::Panic,
        ));
        // Leave the plan cleanup to the next install (the panic unwinds).
        apply(points::PANIC_IN_CHUNK, None);
    }
}
