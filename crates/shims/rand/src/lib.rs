//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *tiny* subset of the `rand 0.8` API its code actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`f32`/`u32`/`u64`/`bool`, [`Rng::gen_range`] over primitive
//! ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! fast and fully deterministic per seed. Note the streams differ from the
//! real `rand` crate's `StdRng` (ChaCha12); everything downstream treats
//! seeds as opaque reproducibility handles, so only determinism matters,
//! not the particular stream.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sealed {
    /// One SplitMix64 step; used to expand seeds into full state.
    pub fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    };
}
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i32);
int_range!(i64);

/// High-level drawing interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{sealed::splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate orbit; splitmix cannot
            // produce it from any seed, but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// In-place shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&f));
            let i = rng.gen_range(5u32..8);
            assert!((5..8).contains(&i));
            let j = rng.gen_range(0i64..=3);
            assert!((0..=3).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
