//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! deterministic miniature of the `proptest` API subset its tests use:
//! [`proptest!`] / [`prop_compose!`] / [`prop_oneof!`] blocks, range and
//! tuple strategies, [`Just`], [`collection::vec`], [`any`], `prop_map`,
//! `prop_assume!` and the `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its sampled values via the
//!   normal assert message; cases are deterministic per (file, test, index),
//!   so a failure reproduces exactly by re-running the test.
//! * **Deterministic.** There is no `PROPTEST_CASES` env handling and no
//!   persistence files; every run samples the same cases.
//! * Default case count is 64 (configurable per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's identity and case index so every case is
    /// reproducible and distinct.
    pub fn from_parts(file: &str, test: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= case as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        TestRng { state: h }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a sampled case did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is resampled.
    Reject,
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy backed by a sampling closure (used by [`prop_compose!`]).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `choices` is empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )+};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )+};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical full-range strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy over every value of `T` (used as `any::<i64>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Rejects the current case, resampling fresh inputs (counts toward the
/// rejection budget, not the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a proptest case (panics with the values on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(choices)
    }};
}

/// Defines a named strategy function from simpler strategies.
///
/// Supports the plain form `fn name()(bindings) -> T { body }` and the
/// chained form `fn name()(first)(second) -> T { body }` where the second
/// binding list may reference values drawn by the first.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ()
            ( $($p1:pat in $s1:expr),+ $(,)? )
            ( $($p2:pat in $s2:expr),+ $(,)? )
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $p1 = $crate::Strategy::sample(&($s1), rng);)+
                $(let $p2 = $crate::Strategy::sample(&($s2), rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ()
            ( $($p:pat in $s:expr),+ $(,)? )
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $p = $crate::Strategy::sample(&($s), rng);)+
                $body
            })
        }
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (
        @block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut succeeded: u32 = 0;
                let mut attempt: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while succeeded < config.cases {
                    assert!(
                        attempt < max_attempts,
                        "proptest: too many rejected cases ({} accepted of {} attempts)",
                        succeeded,
                        attempt,
                    );
                    let mut rng =
                        $crate::TestRng::from_parts(file!(), stringify!($name), attempt);
                    attempt += 1;
                    $(let $p = $crate::Strategy::sample(&($s), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut case =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    match case() {
                        ::std::result::Result::Ok(()) => succeeded += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    prop_compose! {
        fn pair()(a in evens())(a in Just(a), b in 0u32..=9) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), 10u32..12, evens()]) {
            prop_assert!(v == 1 || v == 10 || v == 11 || v % 2 == 0);
        }

        #[test]
        fn compose_chained_lists((a, b) in pair()) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b <= 9);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_and_tuples(
            xs in prop::collection::vec((0u32..5, 0u32..5), 1..8),
            n in any::<i64>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&(a, b)| a < 5 && b < 5));
            let _ = n;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (0u64..u64::MAX, 0u64..u64::MAX);
        let mut r1 = TestRng::from_parts("f", "t", 3);
        let mut r2 = TestRng::from_parts("f", "t", 3);
        let mut r3 = TestRng::from_parts("f", "t", 4);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        assert_ne!(s.sample(&mut r1), s.sample(&mut r3));
    }

    use crate::{Strategy, TestRng};
}
