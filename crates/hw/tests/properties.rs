//! Property-based invariants of the synthesis model: every netlist the
//! sweep can produce must be physically sensible and monotone in the
//! obvious knobs.

use dp_fixed::FixedFormat;
use dp_hw::{emac_netlist, plan_accelerator, report, Calib, FormatSpec};
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use proptest::prelude::*;

fn specs() -> impl Strategy<Value = FormatSpec> {
    prop_oneof![
        (5u32..=16, 0u32..=2)
            .prop_map(|(n, es)| { FormatSpec::Posit(PositFormat::new(n, es.min(n - 3)).unwrap()) }),
        (2u32..=5, 1u32..=10)
            .prop_map(|(we, wf)| FormatSpec::Float(FloatFormat::new(we, wf).unwrap())),
        (4u32..=16, 1u32..=15)
            .prop_map(|(n, q)| FormatSpec::Fixed(FixedFormat::new(n, q.min(n - 1)).unwrap())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlists_are_physically_sensible(spec in specs(), k in 1u64..4096) {
        let nl = emac_netlist(spec, k, Calib::default());
        prop_assert!(nl.luts() > 0);
        prop_assert!(nl.ffs() > 0);
        prop_assert!(nl.dsps() >= 1, "every EMAC has a multiplier");
        prop_assert!(nl.critical_path_ns() > 0.0);
        prop_assert!(nl.fmax_hz() > 1e6 && nl.fmax_hz() < 2e9);
        prop_assert!(nl.pipeline_depth() >= nl.stages.len() as u32 - 1);
        prop_assert!(nl.energy_per_mac_pj() > 0.0);
        prop_assert!(nl.edp(k) > 0.0);
        let by_kind: u32 = nl.luts_by_kind().iter().map(|(_, v)| v).sum();
        prop_assert_eq!(by_kind, nl.luts());
    }

    #[test]
    fn wider_accumulators_cost_more(spec in specs(), k in 2u64..1024) {
        // More accumulations -> wider register -> no fewer LUTs, no faster
        // clock, no smaller EDP.
        let small = emac_netlist(spec, k, Calib::default());
        let big = emac_netlist(spec, k * 16, Calib::default());
        prop_assert!(big.luts() >= small.luts());
        prop_assert!(big.fmax_hz() <= small.fmax_hz() + 1.0);
        prop_assert!(big.edp(k * 16) > small.edp(k));
    }

    #[test]
    fn dot_latency_scales_linearly(spec in specs(), k in 8u64..512) {
        let nl = emac_netlist(spec, k, Calib::default());
        let lat1 = nl.dot_latency_ns(k);
        let lat2 = nl.dot_latency_ns(2 * k);
        prop_assert!(lat2 > lat1 * 1.5 && lat2 < lat1 * 2.5);
    }

    #[test]
    fn accelerator_totals_are_consistent(
        spec in specs(),
        d_in in 1u32..64,
        d_h in 1u32..32,
        d_out in 1u32..8,
    ) {
        let plan = plan_accelerator(spec, &[d_in, d_h, d_out], Calib::default());
        let per_layer_sum: u64 = plan
            .layers
            .iter()
            .map(|l| l.emac.luts() as u64 * l.neurons as u64)
            .sum();
        prop_assert_eq!(plan.luts, per_layer_sum);
        prop_assert!(plan.latency_cycles >= plan.interval_cycles);
        prop_assert_eq!(
            plan.weight_memory_bits,
            ((d_in as u64 + 1) * d_h as u64 + (d_h as u64 + 1) * d_out as u64)
                * spec.n() as u64
        );
        prop_assert!(plan.fmax_hz <= plan.layers.iter().map(|l| l.emac.fmax_hz())
            .fold(f64::INFINITY, f64::min) + 1.0);
    }

    #[test]
    fn report_matches_netlist(spec in specs(), k in 1u64..512) {
        let r = report(spec, k, Calib::default());
        let nl = emac_netlist(spec, k, Calib::default());
        prop_assert_eq!(r.luts, nl.luts());
        prop_assert_eq!(r.dsps, nl.dsps());
        prop_assert!((r.fmax_hz - nl.fmax_hz()).abs() < 1.0);
        prop_assert!((r.edp - nl.edp(k)).abs() / r.edp < 1e-9);
    }
}
