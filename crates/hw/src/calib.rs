//! Technology calibration constants.
//!
//! The paper synthesizes its EMACs with Vivado 2017.2 for a Virtex-7
//! `xc7vx485t-2ffg1761c` and reports post-synthesis Fmax, LUT counts, power
//! and energy-delay product. Without the toolchain, this model uses
//! first-order 28 nm FPGA timing/energy constants. They are deliberately
//! centralized here: every number the model produces traces back to these
//! few constants plus datapath structure.
//!
//! Sources of the defaults (approximate, public Xilinx 7-series data):
//! LUT6 logic delay ≈ 0.35 ns with ≈ 0.55 ns average net delay per level;
//! CARRY4 ≈ 40 ps/bit after a one-LUT entry; DSP48E1 multiply ≈ 2.8 ns
//! (unpipelined); FF setup + clk→Q ≈ 0.6 ns; 0.2 ns clock uncertainty.
//! Switching energy ≈ 12 fJ per LUT toggle, 8 fJ per FF toggle, ≈ 1.1 pJ
//! per DSP op at 28 nm, with a default 0.5 activity factor.

/// Timing and energy constants for the synthesis model (28 nm Virtex-7-ish).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calib {
    /// LUT6 logic delay per level (ns).
    pub t_lut_ns: f64,
    /// Average routing delay per logic level (ns).
    pub t_route_ns: f64,
    /// Carry-chain delay per bit (ns).
    pub t_carry_per_bit_ns: f64,
    /// DSP48E1 multiplier combinational delay (ns).
    pub t_dsp_ns: f64,
    /// Register setup + clk→Q overhead per stage (ns).
    pub t_ff_ns: f64,
    /// Clock uncertainty margin (ns).
    pub t_clk_uncert_ns: f64,
    /// Energy per LUT toggle (femtojoules).
    pub e_lut_fj: f64,
    /// Energy per FF toggle (femtojoules).
    pub e_ff_fj: f64,
    /// Energy per DSP operation (picojoules).
    pub e_dsp_pj: f64,
    /// Average toggle (activity) factor applied to switching energy.
    pub activity: f64,
}

impl Calib {
    /// The default Virtex-7 speed-grade-2 calibration used throughout the
    /// reproduction.
    pub const fn virtex7() -> Self {
        Calib {
            t_lut_ns: 0.35,
            t_route_ns: 0.55,
            t_carry_per_bit_ns: 0.04,
            t_dsp_ns: 2.8,
            t_ff_ns: 0.6,
            t_clk_uncert_ns: 0.2,
            e_lut_fj: 12.0,
            e_ff_fj: 8.0,
            e_dsp_pj: 1.1,
            activity: 0.5,
        }
    }

    /// One full logic level: LUT + routing (ns).
    pub fn level_ns(&self) -> f64 {
        self.t_lut_ns + self.t_route_ns
    }
}

impl Default for Calib {
    fn default() -> Self {
        Self::virtex7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Calib::default();
        assert!(c.t_lut_ns > 0.0 && c.t_lut_ns < 1.0);
        assert!(c.level_ns() > c.t_lut_ns);
        assert!(c.activity > 0.0 && c.activity <= 1.0);
        assert_eq!(c, Calib::virtex7());
    }
}
