//! EMAC datapath netlist builders, mirroring paper Figs. 3–5 stage by stage.
//!
//! Design notes shared by all three units:
//!
//! * The streaming stages (decode → multiply → shift → accumulate) run at
//!   the initiation interval of one MAC per cycle; they set Fmax.
//! * The readout (normalize/round/encode) fires once per dot product and is
//!   treated as a multi-cycle path, the standard closure technique — so it
//!   contributes area/energy and drain latency but not Fmax.
//! * Register widths follow the paper: eq. (3) for fixed/float, eq. (4)
//!   for the posit quire.

use crate::calib::Calib;
use crate::component::Component;
use crate::netlist::{Netlist, Stage};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

/// A numerical format an EMAC can be instantiated for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FormatSpec {
    /// Q(n−q).q fixed point.
    Fixed(FixedFormat),
    /// (1, we, wf) minifloat.
    Float(FloatFormat),
    /// (n, es) posit.
    Posit(PositFormat),
}

/// Format family, for grouping sweep results (paper figure series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Fixed-point EMACs.
    Fixed,
    /// Floating-point EMACs.
    Float,
    /// Posit EMACs.
    Posit,
}

impl FormatSpec {
    /// Total bit width of the format.
    pub fn n(&self) -> u32 {
        match self {
            FormatSpec::Fixed(f) => f.n(),
            FormatSpec::Float(f) => f.n(),
            FormatSpec::Posit(f) => f.n(),
        }
    }

    /// Dynamic range in decades (paper §IV-A: `log10(max/min)`).
    pub fn dynamic_range_log10(&self) -> f64 {
        match self {
            FormatSpec::Fixed(f) => f.dynamic_range_log10(),
            FormatSpec::Float(f) => f.dynamic_range_log10(),
            FormatSpec::Posit(f) => f.dynamic_range_log10(),
        }
    }

    /// Family of the format.
    pub fn family(&self) -> Family {
        match self {
            FormatSpec::Fixed(_) => Family::Fixed,
            FormatSpec::Float(_) => Family::Float,
            FormatSpec::Posit(_) => Family::Posit,
        }
    }

    /// Human-readable label, e.g. `posit<8,1>`.
    pub fn label(&self) -> String {
        match self {
            FormatSpec::Fixed(f) => f.to_string(),
            FormatSpec::Float(f) => f.to_string(),
            FormatSpec::Posit(f) => f.to_string(),
        }
    }
}

/// ⌈log2 k⌉ for k ≥ 1.
fn ceil_log2(k: u64) -> u32 {
    k.max(1).next_power_of_two().trailing_zeros()
}

/// Builds the EMAC netlist for `spec` sized for `k`-element dot products.
pub fn emac_netlist(spec: FormatSpec, k: u64, calib: Calib) -> Netlist {
    match spec {
        FormatSpec::Fixed(f) => fixed_emac_netlist(f, k, calib),
        FormatSpec::Float(f) => float_emac_netlist(f, k, calib),
        FormatSpec::Posit(f) => posit_emac_netlist(f, k, calib),
    }
}

/// Fixed-point EMAC (paper Fig. 3): multiply → accumulate → shift/clip.
pub fn fixed_emac_netlist(fmt: FixedFormat, k: u64, c: Calib) -> Netlist {
    let n = fmt.n();
    let wa = 2 * n + ceil_log2(k); // paper eq. (3) for fixed point
    let s_mult = Stage::new(
        "multiply",
        vec![Component::multiplier(&c, "mult", n, n)],
        vec![
            Component::register(&c, "in_regs", 2 * n),
            Component::register(&c, "prod_reg", 2 * n),
        ],
    );
    let s_acc = Stage::new(
        "accumulate",
        vec![Component::adder(&c, "acc_add", wa)],
        vec![Component::register(&c, "acc_reg", wa)],
    );
    let s_out = Stage::new(
        "shift_clip",
        vec![
            // The >>q shift is wiring; clip compares the high bits.
            Component::comparator(&c, "clip", wa),
            Component::mux2(&c, "out_mux", n),
        ],
        vec![Component::register(&c, "out_reg", n)],
    );
    Netlist::new(
        format!("{fmt} EMAC"),
        n,
        fmt.dynamic_range_log10(),
        vec![s_mult, s_acc, s_out],
        c,
    )
    .with_streaming_stages(2)
}

/// Floating-point EMAC (paper Fig. 4): decode (subnormal normalize) +
/// multiply → fixed-point convert (2's comp + biased shift) → accumulate →
/// normalize/round/clip readout.
pub fn float_emac_netlist(fmt: FloatFormat, k: u64, c: Calib) -> Netlist {
    let n = fmt.n();
    let (we, wf) = (fmt.we(), fmt.wf());
    let f = 1 + wf; // significand width with hidden bit
                    // Paper eq. (3) with ceil(log2(max/min)) = 2^we − 2 + wf.
    let wa = ceil_log2(k) + 2 * ((1u32 << we) - 2 + wf) + 2;
    let prod_w = 2 + 2 * wf;
    let s_decode_mult = Stage::new(
        "decode_multiply",
        vec![
            // Subnormal inputs must be normalized (LZD + shift) before the
            // hidden-bit multiply — logic posits never need.
            Component::lzd(&c, "subnorm_lzd", f),
            Component::barrel_shifter(&c, "subnorm_shift", f, wf.max(1)),
            Component::multiplier(&c, "mult", f, f),
        ],
        vec![
            Component::logic(&c, "subnorm_detect", we.div_ceil(3) * 2, 1),
            Component::register(&c, "in_regs", 2 * n),
            Component::adder(&c, "exp_add", we + 2),
            Component::register(&c, "prod_reg", prod_w + we + 2),
        ],
    );
    let s_convert = Stage::new(
        "fixed_convert",
        vec![
            Component::twos_complement(&c, "prod_2c", prod_w + 1),
            Component::barrel_shifter(&c, "to_fixed", wa, wa - 1),
        ],
        vec![Component::register(&c, "shifted_reg", wa)],
    );
    let s_acc = Stage::new(
        "accumulate",
        vec![Component::adder(&c, "acc_add", wa)],
        vec![Component::register(&c, "acc_reg", wa)],
    );
    let s_round = Stage::new(
        "normalize_round",
        vec![
            Component::twos_complement(&c, "acc_2c", wa),
            Component::lzd(&c, "norm_lzd", wa),
            Component::barrel_shifter(&c, "norm_shift", wa, wa - 1),
            // Subnormal outputs re-denormalize before rounding.
            Component::barrel_shifter(&c, "subnorm_out", wf + 2, wf.max(1)),
            Component::adder(&c, "round_add", wf + 2),
        ],
        vec![
            Component::adder(&c, "exp_out", we + 2),
            Component::comparator(&c, "clip", n),
            Component::mux2(&c, "out_mux", n),
            Component::register(&c, "out_reg", n),
        ],
    );
    Netlist::new(
        format!("{fmt} EMAC"),
        n,
        fmt.dynamic_range_log10(),
        vec![s_decode_mult, s_convert, s_acc, s_round],
        c,
    )
    .with_streaming_stages(3)
}

/// Posit EMAC (paper Fig. 5, Algorithms 1–2): decode → multiply + scale
/// factor → quire shift → accumulate → extract/round/encode readout.
pub fn posit_emac_netlist(fmt: PositFormat, k: u64, c: Calib) -> Netlist {
    let n = fmt.n();
    let es = fmt.es();
    let f = n - 2 - es; // significand width with hidden bit
                        // Paper eq. (4).
    let qs = (1u32 << (es + 2)) * (n - 2) + 2 + ceil_log2(k);
    let sf_w = es + 32 - n.leading_zeros() + 2; // {regime, exp} scale factor
    let prod_w = 2 * f;
    let s_decode = Stage::new(
        "decode",
        // Algorithm 1: two's complement, regime fold, LZD, regime shift-out.
        vec![
            Component::twos_complement(&c, "in_2c", n),
            Component::lzd(&c, "regime_lzd", n),
            Component::barrel_shifter(&c, "regime_shift", n, n - 1),
        ],
        vec![
            // The weight decoder runs in parallel with the activation's.
            Component::twos_complement(&c, "in_2c_b", n),
            Component::lzd(&c, "regime_lzd_b", n),
            Component::barrel_shifter(&c, "regime_shift_b", n, n - 1),
            Component::logic(&c, "field_extract", 2 * n.div_ceil(2), 1),
            Component::register(&c, "in_regs", 2 * n),
            Component::register(&c, "dec_regs", 2 * (f + sf_w + 1)),
        ],
    );
    let s_mult = Stage::new(
        "multiply_sf",
        vec![
            Component::multiplier(&c, "mult", f, f),
            Component::twos_complement(&c, "prod_2c", prod_w + 1),
        ],
        vec![
            Component::adder(&c, "sf_add", sf_w + 1),
            Component::register(&c, "prod_reg", prod_w + sf_w + 2),
        ],
    );
    let s_shift = Stage::new(
        "quire_shift",
        vec![Component::barrel_shifter(&c, "to_quire", qs, qs - 1)],
        vec![Component::register(&c, "shifted_reg", qs)],
    );
    let s_acc = Stage::new(
        "accumulate",
        vec![Component::adder(&c, "quire_add", qs)],
        vec![Component::register(&c, "quire_reg", qs)],
    );
    let s_round = Stage::new(
        "extract_round_encode",
        vec![
            Component::twos_complement(&c, "quire_2c", qs),
            Component::lzd(&c, "quire_lzd", qs),
            Component::barrel_shifter(&c, "frac_extract", qs, qs - 1),
            // Regime insertion shifter + rounding increment (Alg. 2, 20-43).
            Component::barrel_shifter(&c, "regime_pack", 2 * n, n - 1),
            Component::adder(&c, "round_add", n + 1),
        ],
        vec![
            Component::twos_complement(&c, "sf_unbias", sf_w + 1),
            Component::logic(&c, "exception_flags", n.div_ceil(2), 2),
            Component::mux2(&c, "out_mux", n),
            Component::twos_complement(&c, "out_2c", n),
            Component::register(&c, "out_reg", n),
        ],
    );
    Netlist::new(
        format!("{fmt} EMAC"),
        n,
        fmt.dynamic_range_log10(),
        vec![s_decode, s_mult, s_shift, s_acc, s_round],
        c,
    )
    .with_streaming_stages(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calib() -> Calib {
        Calib::default()
    }

    fn p(n: u32, es: u32) -> FormatSpec {
        FormatSpec::Posit(PositFormat::new(n, es).unwrap())
    }

    fn fl(we: u32, wf: u32) -> FormatSpec {
        FormatSpec::Float(FloatFormat::new(we, wf).unwrap())
    }

    fn fx(n: u32, q: u32) -> FormatSpec {
        FormatSpec::Fixed(FixedFormat::new(n, q).unwrap())
    }

    #[test]
    fn spec_accessors() {
        assert_eq!(p(8, 0).n(), 8);
        assert_eq!(fl(4, 3).n(), 8);
        assert_eq!(fx(8, 6).n(), 8);
        assert_eq!(p(8, 1).family(), Family::Posit);
        assert!(p(8, 1).label().contains("posit"));
        assert!(p(8, 1).dynamic_range_log10() > fl(3, 4).dynamic_range_log10());
    }

    #[test]
    fn fixed_is_fastest_and_smallest_at_same_n() {
        let k = 128;
        let nl_fx = emac_netlist(fx(8, 6), k, calib());
        let nl_fl = emac_netlist(fl(4, 3), k, calib());
        let nl_p = emac_netlist(p(8, 1), k, calib());
        assert!(nl_fx.fmax_hz() > nl_fl.fmax_hz(), "fixed beats float");
        assert!(nl_fx.fmax_hz() > nl_p.fmax_hz(), "fixed beats posit");
        assert!(nl_fx.luts() < nl_fl.luts());
        assert!(nl_fx.luts() < nl_p.luts());
        assert!(
            nl_fx.edp(k) < nl_fl.edp(k),
            "paper Fig. 7: fixed lowest EDP"
        );
        assert!(nl_fx.edp(k) < nl_p.edp(k));
    }

    #[test]
    fn posit_has_highest_luts_at_8_bits() {
        // Paper Fig. 8: posit generally consumes the most LUTs.
        let k = 128;
        let lp = emac_netlist(p(8, 1), k, calib()).luts();
        let lf = emac_netlist(fl(4, 3), k, calib()).luts();
        let lx = emac_netlist(fx(8, 6), k, calib()).luts();
        assert!(lp > lf, "posit {lp} vs float {lf}");
        assert!(lf > lx, "float {lf} vs fixed {lx}");
    }

    #[test]
    fn luts_grow_with_width() {
        let k = 64;
        for es in [0, 1] {
            let l5 = emac_netlist(p(5, es), k, calib()).luts();
            let l8 = emac_netlist(p(8, es), k, calib()).luts();
            assert!(l8 > l5, "posit es={es}");
        }
        let f5 = emac_netlist(fl(2, 2), k, calib()).luts();
        let f8 = emac_netlist(fl(4, 3), k, calib()).luts();
        assert!(f8 > f5);
    }

    #[test]
    fn fmax_in_plausible_fpga_range() {
        // Paper Fig. 6 y-axis is ~1e8 Hz: all Fmax between 50 and 500 MHz.
        for spec in [p(8, 0), p(8, 2), fl(4, 3), fl(5, 2), fx(8, 6), fx(5, 4)] {
            let f = emac_netlist(spec, 128, calib()).fmax_hz();
            assert!(
                (5e7..5e8).contains(&f),
                "{}: {:.1} MHz",
                spec.label(),
                f / 1e6
            );
        }
    }

    #[test]
    fn pipeline_depths_match_emac_models() {
        assert_eq!(emac_netlist(fx(8, 6), 8, calib()).stages.len(), 3);
        assert_eq!(emac_netlist(fl(4, 3), 8, calib()).stages.len(), 4);
        assert_eq!(emac_netlist(p(8, 0), 8, calib()).stages.len(), 5);
    }
}
