//! Stage-structured netlists and the timing / area / power roll-up.

use crate::calib::Calib;
use crate::component::{Component, Kind};
use std::fmt;

/// One pipeline stage: a serial critical path plus off-path components.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (mirrors the paper figures' stage boundaries).
    pub name: String,
    /// Components chained on the stage's critical path.
    pub path: Vec<Component>,
    /// Components in parallel branches (area/energy, not timing).
    pub side: Vec<Component>,
}

impl Stage {
    /// Creates a stage from its critical path and side components.
    pub fn new(name: &str, path: Vec<Component>, side: Vec<Component>) -> Self {
        Stage {
            name: name.into(),
            path,
            side,
        }
    }

    /// Critical-path combinational delay (ns).
    pub fn delay_ns(&self) -> f64 {
        self.path.iter().map(|c| c.delay_ns).sum()
    }

    fn all(&self) -> impl Iterator<Item = &Component> {
        self.path.iter().chain(self.side.iter())
    }
}

/// A complete EMAC datapath model: pipeline stages + roll-up queries.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Unit name, e.g. `"posit<8,0> EMAC"`.
    pub name: String,
    /// Input width n (for sweep labelling).
    pub n: u32,
    /// Dynamic range of the input format, `log10(max/min)`.
    pub dynamic_range_log10: f64,
    /// Pipeline stages in dataflow order.
    pub stages: Vec<Stage>,
    /// Leading stages that stream one MAC/cycle (they set Fmax); the
    /// remaining readout stages are multi-cycle paths.
    streaming: usize,
    calib: Calib,
}

impl Netlist {
    /// Assembles a netlist from stages (all streaming by default).
    pub fn new(
        name: String,
        n: u32,
        dynamic_range_log10: f64,
        stages: Vec<Stage>,
        calib: Calib,
    ) -> Self {
        let streaming = stages.len();
        Netlist {
            name,
            n,
            dynamic_range_log10,
            stages,
            streaming,
            calib,
        }
    }

    /// Marks the first `m` stages as streaming (timing-critical); later
    /// stages — the once-per-dot-product readout — become multi-cycle
    /// paths, the standard timing-closure treatment for them.
    pub fn with_streaming_stages(mut self, m: usize) -> Self {
        self.streaming = m.clamp(1, self.stages.len());
        self
    }

    /// The calibration this netlist was built with.
    pub fn calib(&self) -> &Calib {
        &self.calib
    }

    /// Total LUT count (paper Fig. 8's metric).
    pub fn luts(&self) -> u32 {
        self.stages
            .iter()
            .flat_map(|s| s.all())
            .map(|c| c.luts)
            .sum()
    }

    /// Total flip-flop count.
    pub fn ffs(&self) -> u32 {
        self.stages
            .iter()
            .flat_map(|s| s.all())
            .map(|c| c.ffs)
            .sum()
    }

    /// Total DSP48 count.
    pub fn dsps(&self) -> u32 {
        self.stages
            .iter()
            .flat_map(|s| s.all())
            .map(|c| c.dsps)
            .sum()
    }

    /// Slowest *streaming* stage's combinational delay (ns).
    pub fn critical_path_ns(&self) -> f64 {
        self.stages[..self.streaming]
            .iter()
            .map(|s| s.delay_ns())
            .fold(0.0, f64::max)
    }

    /// Maximum operating frequency (Hz): slowest streaming stage + register
    /// overhead + clock uncertainty (paper Fig. 6's metric).
    pub fn fmax_hz(&self) -> f64 {
        let t = self.critical_path_ns() + self.calib.t_ff_ns + self.calib.t_clk_uncert_ns;
        1e9 / t
    }

    /// Pipeline depth in cycles: one per streaming stage plus however many
    /// clock periods each multi-cycle readout stage needs.
    pub fn pipeline_depth(&self) -> u32 {
        let period = 1e9 / self.fmax_hz();
        let readout: u32 = self.stages[self.streaming..]
            .iter()
            .map(|s| (s.delay_ns() / period).ceil().max(1.0) as u32)
            .sum();
        self.streaming as u32 + readout
    }

    /// Switching energy of one MAC issue (pJ): streaming stages toggle every
    /// cycle; the readout stages fire once per dot product and are
    /// amortized over `k` by [`Netlist::dot_energy_pj`].
    pub fn energy_per_mac_pj(&self) -> f64 {
        let act = self.calib.activity;
        self.stages[..self.streaming]
            .iter()
            .flat_map(|s| s.all())
            .map(|c| c.energy_pj)
            .sum::<f64>()
            * act
    }

    /// Energy of the readout (rounding/encode) stages (pJ).
    pub fn round_energy_pj(&self) -> f64 {
        let act = self.calib.activity;
        self.stages[self.streaming..]
            .iter()
            .flat_map(|s| s.all())
            .map(|c| c.energy_pj)
            .sum::<f64>()
            * act
    }

    /// Wall-clock latency of a `k`-MAC dot product (ns): `k` issues plus
    /// pipeline drain at Fmax.
    pub fn dot_latency_ns(&self, k: u64) -> f64 {
        (k as f64 + self.pipeline_depth() as f64) * 1e9 / self.fmax_hz()
    }

    /// Total switching energy of a `k`-MAC dot product (pJ).
    pub fn dot_energy_pj(&self, k: u64) -> f64 {
        k as f64 * self.energy_per_mac_pj() + self.round_energy_pj()
    }

    /// Energy-delay product of a `k`-MAC dot product (J·s) — paper Fig. 7's
    /// metric (relative scale; see EXPERIMENTS.md on absolute units).
    pub fn edp(&self, k: u64) -> f64 {
        (self.dot_energy_pj(k) * 1e-12) * (self.dot_latency_ns(k) * 1e-9)
    }

    /// Average dynamic power at Fmax while streaming (W).
    pub fn dynamic_power_w(&self) -> f64 {
        self.energy_per_mac_pj() * 1e-12 * self.fmax_hz()
    }

    /// Per-kind LUT breakdown, for netlist dumps and ablations.
    pub fn luts_by_kind(&self) -> Vec<(Kind, u32)> {
        let mut acc: Vec<(Kind, u32)> = Vec::new();
        for c in self.stages.iter().flat_map(|s| s.all()) {
            match acc.iter_mut().find(|(k, _)| *k == c.kind) {
                Some((_, v)) => *v += c.luts,
                None => acc.push((c.kind, c.luts)),
            }
        }
        acc
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} LUTs, {} FFs, {} DSPs, Fmax {:.1} MHz",
            self.name,
            self.luts(),
            self.ffs(),
            self.dsps(),
            self.fmax_hz() / 1e6
        )?;
        for s in &self.stages {
            writeln!(f, "  stage {:<18} {:.2} ns", s.name, s.delay_ns())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_netlist() -> Netlist {
        let c = Calib::default();
        let s1 = Stage::new(
            "mult",
            vec![Component::multiplier(&c, "m", 8, 8)],
            vec![Component::register(&c, "r", 16)],
        );
        let s2 = Stage::new(
            "acc",
            vec![Component::adder(&c, "a", 24)],
            vec![Component::register(&c, "r", 24)],
        );
        let s3 = Stage::new("round", vec![Component::comparator(&c, "clip", 8)], vec![]);
        Netlist::new("test".into(), 8, 4.0, vec![s1, s2, s3], c).with_streaming_stages(2)
    }

    #[test]
    fn rollups() {
        let n = simple_netlist();
        assert_eq!(n.dsps(), 1);
        assert_eq!(n.ffs(), 40);
        assert_eq!(n.luts(), 24 + 8);
        assert_eq!(n.pipeline_depth(), 3);
        // DSP stage dominates timing here.
        assert!((n.critical_path_ns() - 2.8).abs() < 1e-9);
        let expected_fmax = 1e9 / (2.8 + 0.6 + 0.2);
        assert!((n.fmax_hz() - expected_fmax).abs() < 1.0);
    }

    #[test]
    fn energy_split_between_stream_and_round() {
        let n = simple_netlist();
        assert!(n.energy_per_mac_pj() > 0.0);
        assert!(n.round_energy_pj() > 0.0);
        let e1 = n.dot_energy_pj(1);
        let e100 = n.dot_energy_pj(100);
        assert!(e100 > 50.0 * e1 / 2.0, "scales with k");
    }

    #[test]
    fn edp_monotone_in_k() {
        let n = simple_netlist();
        assert!(n.edp(10) < n.edp(100));
        assert!(n.edp(100) > 0.0);
    }

    #[test]
    fn display_contains_stage_names() {
        let s = simple_netlist().to_string();
        assert!(s.contains("mult") && s.contains("Fmax"));
    }

    #[test]
    fn luts_by_kind_accumulates() {
        let n = simple_netlist();
        let by = n.luts_by_kind();
        let total: u32 = by.iter().map(|(_, v)| v).sum();
        assert_eq!(total, n.luts());
    }
}
