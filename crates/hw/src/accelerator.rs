//! Full Deep Positron accelerator roll-up (paper Fig. 1 / §III-E).
//!
//! The paper's architecture instantiates, per layer, one EMAC per neuron
//! with local weight/bias memories, and streams activations layer to
//! layer under a main-control FSM. This module aggregates the per-EMAC
//! synthesis model over a whole topology: total LUT/FF/DSP/BRAM budget,
//! per-inference latency at Fmax, streaming throughput, energy and EDP —
//! the numbers a designer would use to size a Virtex-7 deployment.

use crate::calib::Calib;
use crate::emacs::{emac_netlist, FormatSpec};
use crate::netlist::Netlist;
use std::fmt;

/// One layer of the accelerator: `neurons` EMACs with `fan_in`-deep
/// weight memories.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Fan-in (weights per neuron = MAC cycles per input vector).
    pub fan_in: u32,
    /// Neuron / EMAC count.
    pub neurons: u32,
    /// The synthesized EMAC model for this layer.
    pub emac: Netlist,
}

impl LayerPlan {
    /// Cycles this layer occupies per input vector: one MAC per cycle
    /// plus pipeline drain.
    pub fn occupancy_cycles(&self) -> u64 {
        self.fan_in as u64 + self.emac.pipeline_depth() as u64
    }

    /// Weight + bias words held in local memory.
    pub fn memory_words(&self) -> u64 {
        (self.fan_in as u64 + 1) * self.neurons as u64
    }
}

/// Synthesis summary of a whole Deep Positron instance.
#[derive(Debug, Clone)]
pub struct AcceleratorReport {
    /// The numerical format of every EMAC.
    pub spec: FormatSpec,
    /// Layer widths `[in, hidden..., out]`.
    pub dims: Vec<u32>,
    /// Per-layer plans.
    pub layers: Vec<LayerPlan>,
    /// Clock: the slowest layer's Fmax governs the whole core (one clock
    /// domain, as in the paper's design).
    pub fmax_hz: f64,
    /// Total LUTs across all EMACs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total DSP48 slices.
    pub dsps: u64,
    /// On-chip memory bits for weights/biases (BRAM/LUTRAM budget).
    pub weight_memory_bits: u64,
    /// First-inference latency (cycles): layers run back to back.
    pub latency_cycles: u64,
    /// Steady-state initiation interval (cycles) when streaming.
    pub interval_cycles: u64,
    /// Dynamic energy per inference (pJ).
    pub energy_per_inference_pj: f64,
}

impl AcceleratorReport {
    /// First-inference latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.latency_cycles as f64 * 1e9 / self.fmax_hz
    }

    /// Streaming throughput in inferences per second.
    pub fn throughput_per_s(&self) -> f64 {
        self.fmax_hz / self.interval_cycles as f64
    }

    /// Energy-delay product per inference (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_per_inference_pj * 1e-12 * self.latency_ns() * 1e-9
    }
}

/// Plans a Deep Positron instance for `dims` (e.g. `[30, 16, 2]`) in the
/// given format.
///
/// # Panics
///
/// Panics if `dims` has fewer than two entries.
pub fn plan_accelerator(spec: FormatSpec, dims: &[u32], calib: Calib) -> AcceleratorReport {
    assert!(dims.len() >= 2, "need at least input and output widths");
    let n_bits = spec.n() as u64;
    let layers: Vec<LayerPlan> = dims
        .windows(2)
        .map(|w| LayerPlan {
            fan_in: w[0],
            neurons: w[1],
            emac: emac_netlist(spec, w[0] as u64, calib),
        })
        .collect();
    let fmax_hz = layers
        .iter()
        .map(|l| l.emac.fmax_hz())
        .fold(f64::INFINITY, f64::min);
    let luts: u64 = layers
        .iter()
        .map(|l| l.emac.luts() as u64 * l.neurons as u64)
        .sum();
    let ffs: u64 = layers
        .iter()
        .map(|l| l.emac.ffs() as u64 * l.neurons as u64)
        .sum();
    let dsps: u64 = layers
        .iter()
        .map(|l| l.emac.dsps() as u64 * l.neurons as u64)
        .sum();
    let weight_memory_bits: u64 = layers.iter().map(|l| l.memory_words() * n_bits).sum();
    let latency_cycles: u64 = layers.iter().map(|l| l.occupancy_cycles()).sum();
    let interval_cycles: u64 = layers
        .iter()
        .map(|l| l.occupancy_cycles())
        .max()
        .unwrap_or(1);
    // Per inference: every EMAC in layer ℓ performs fan_in MACs plus one
    // readout.
    let energy_per_inference_pj: f64 = layers
        .iter()
        .map(|l| {
            l.neurons as f64
                * (l.fan_in as f64 * l.emac.energy_per_mac_pj() + l.emac.round_energy_pj())
        })
        .sum();
    AcceleratorReport {
        spec,
        dims: dims.to_vec(),
        layers,
        fmax_hz,
        luts,
        ffs,
        dsps,
        weight_memory_bits,
        latency_cycles,
        interval_cycles,
        energy_per_inference_pj,
    }
}

impl fmt::Display for AcceleratorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Deep Positron {:?} @ {}: {} LUTs, {} FFs, {} DSPs, {:.1} kb weights",
            self.dims,
            self.spec.label(),
            self.luts,
            self.ffs,
            self.dsps,
            self.weight_memory_bits as f64 / 1000.0
        )?;
        writeln!(
            f,
            "  Fmax {:.1} MHz | latency {} cy = {:.2} µs | II {} cy = {:.1} k inf/s | {:.1} nJ/inf",
            self.fmax_hz / 1e6,
            self.latency_cycles,
            self.latency_ns() / 1000.0,
            self.interval_cycles,
            self.throughput_per_s() / 1e3,
            self.energy_per_inference_pj / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_fixed::FixedFormat;
    use dp_posit::PositFormat;

    fn posit8() -> FormatSpec {
        FormatSpec::Posit(PositFormat::new(8, 0).unwrap())
    }

    #[test]
    fn plan_aggregates_layers() {
        let r = plan_accelerator(posit8(), &[30, 16, 2], Calib::default());
        assert_eq!(r.layers.len(), 2);
        assert_eq!(r.layers[0].fan_in, 30);
        assert_eq!(r.layers[0].neurons, 16);
        // 16 + 2 = 18 EMACs total, each with >= 1 DSP.
        assert!(r.dsps >= 18);
        // Weight memory: (30+1)*16 + (16+1)*2 words × 8 bits.
        assert_eq!(r.weight_memory_bits, ((31 * 16) + (17 * 2)) * 8);
        assert!(r.latency_cycles > 30 + 16);
        assert_eq!(
            r.interval_cycles,
            r.layers.iter().map(|l| l.occupancy_cycles()).max().unwrap()
        );
        assert!(r.fmax_hz > 5e7);
        assert!(r.energy_per_inference_pj > 0.0);
        assert!(r.edp() > 0.0);
        assert!(r.to_string().contains("Deep Positron"));
    }

    #[test]
    fn bigger_topologies_cost_more() {
        let small = plan_accelerator(posit8(), &[4, 8, 3], Calib::default());
        let big = plan_accelerator(posit8(), &[117, 24, 2], Calib::default());
        assert!(big.luts > small.luts);
        assert!(big.latency_cycles > small.latency_cycles);
        assert!(big.energy_per_inference_pj > small.energy_per_inference_pj);
    }

    #[test]
    fn fixed_point_accelerator_is_cheaper() {
        let p = plan_accelerator(posit8(), &[30, 16, 2], Calib::default());
        let x = plan_accelerator(
            FormatSpec::Fixed(FixedFormat::new(8, 6).unwrap()),
            &[30, 16, 2],
            Calib::default(),
        );
        assert!(x.luts < p.luts);
        assert!(x.fmax_hz > p.fmax_hz);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate_topology() {
        plan_accelerator(posit8(), &[30], Calib::default());
    }
}
