//! Per-EMAC synthesis reports and the paper's sweep grids.

use crate::calib::Calib;
use crate::emacs::{emac_netlist, Family, FormatSpec};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::fmt;

/// All the metrics the paper reports for one EMAC configuration
/// (Figs. 6–8 and the EDP axis of Fig. 9).
#[derive(Debug, Clone)]
pub struct EmacReport {
    /// The format this EMAC was instantiated for.
    pub spec: FormatSpec,
    /// Dot-product length the unit was sized for.
    pub k: u64,
    /// Dynamic range in decades.
    pub dynamic_range_log10: f64,
    /// Maximum operating frequency (Hz).
    pub fmax_hz: f64,
    /// LUT utilization.
    pub luts: u32,
    /// Flip-flop count.
    pub ffs: u32,
    /// DSP48 count.
    pub dsps: u32,
    /// Switching energy per MAC (pJ).
    pub energy_per_mac_pj: f64,
    /// Latency of one k-MAC dot product (ns).
    pub dot_latency_ns: f64,
    /// Energy-delay product of one k-MAC dot product (J·s).
    pub edp: f64,
    /// Dynamic power while streaming at Fmax (W).
    pub dynamic_power_w: f64,
    /// Pipeline depth (cycles).
    pub pipeline_depth: u32,
}

/// Synthesizes `spec` for `k`-MAC dot products and collects every metric.
pub fn report(spec: FormatSpec, k: u64, calib: Calib) -> EmacReport {
    let nl = emac_netlist(spec, k, calib);
    EmacReport {
        spec,
        k,
        dynamic_range_log10: spec.dynamic_range_log10(),
        fmax_hz: nl.fmax_hz(),
        luts: nl.luts(),
        ffs: nl.ffs(),
        dsps: nl.dsps(),
        energy_per_mac_pj: nl.energy_per_mac_pj(),
        dot_latency_ns: nl.dot_latency_ns(k),
        edp: nl.edp(k),
        dynamic_power_w: nl.dynamic_power_w(),
        pipeline_depth: nl.pipeline_depth(),
    }
}

impl fmt::Display for EmacReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} DR {:>5.2} dec  Fmax {:>6.1} MHz  {:>5} LUTs  {:>4} FFs  {} DSP  {:>7.2} pJ/MAC  EDP {:.3e}",
            self.spec.label(),
            self.dynamic_range_log10,
            self.fmax_hz / 1e6,
            self.luts,
            self.ffs,
            self.dsps,
            self.energy_per_mac_pj,
            self.edp,
        )
    }
}

/// The paper's configuration grid for a given width `n ∈ [5, 8]`:
/// posit es ∈ {0, 1, 2}, float we ∈ {2..=5} (wf ≥ 1), fixed q = n−2
/// (two integer bits — the best DNN configuration; hardware metrics are
/// independent of `q`).
pub fn paper_grid(n: u32) -> Vec<FormatSpec> {
    let mut v = Vec::new();
    for es in 0..=2u32 {
        if es <= n - 3 {
            v.push(FormatSpec::Posit(PositFormat::new(n, es).unwrap()));
        }
    }
    for we in 2..=5u32 {
        if we + 2 <= n {
            let wf = n - 1 - we;
            v.push(FormatSpec::Float(FloatFormat::new(we, wf).unwrap()));
        }
    }
    v.push(FormatSpec::Fixed(FixedFormat::new(n, n - 2).unwrap()));
    v
}

/// One representative configuration per family at width `n`, used by the
/// per-n figures (Figs. 7–8): posit es=1, float we=4 (paper: best results
/// use es ∈ {0,2} / we ∈ {3,4}; es=1/we=4 are the midpoints), fixed q=n−2.
pub fn representative(n: u32, family: Family) -> FormatSpec {
    match family {
        Family::Posit => FormatSpec::Posit(PositFormat::new(n, 1).unwrap()),
        Family::Float => {
            let we = 4.min(n - 3).max(2);
            FormatSpec::Float(FloatFormat::new(we, n - 1 - we).unwrap())
        }
        Family::Fixed => FormatSpec::Fixed(FixedFormat::new(n, n - 2).unwrap()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_consistent_with_netlist() {
        let spec = representative(8, Family::Posit);
        let r = report(spec, 128, Calib::default());
        let nl = emac_netlist(spec, 128, Calib::default());
        assert_eq!(r.luts, nl.luts());
        assert!((r.fmax_hz - nl.fmax_hz()).abs() < 1.0);
        assert!(r.edp > 0.0);
        assert!(r.dot_latency_ns > 128.0 / (r.fmax_hz / 1e9));
        let s = r.to_string();
        assert!(s.contains("posit<8,1>") && s.contains("LUTs"));
    }

    #[test]
    fn paper_grid_contents() {
        let g5 = paper_grid(5);
        // n=5: posit es in {0,1,2}, float we in {2,3}, fixed -> 6 configs.
        assert_eq!(g5.len(), 6);
        let g8 = paper_grid(8);
        // n=8: 3 posits + 4 floats + 1 fixed.
        assert_eq!(g8.len(), 8);
        assert!(g8.iter().all(|s| s.n() == 8));
    }

    #[test]
    fn representatives_have_requested_width() {
        for n in 5..=8 {
            for fam in [Family::Posit, Family::Float, Family::Fixed] {
                assert_eq!(representative(n, fam).n(), n, "{fam:?} n={n}");
            }
        }
    }
}
