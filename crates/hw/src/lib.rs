//! # dp-hw — analytical FPGA synthesis model for the Deep Positron EMACs
//!
//! The paper evaluates its EMAC soft cores with Vivado 2017.2 on a Virtex-7
//! `xc7vx485t` and reports maximum operating frequency (Fig. 6), energy-
//! delay product (Fig. 7), LUT utilization (Fig. 8) and the accuracy/EDP
//! trade-off (Fig. 9). This crate is the reproduction's **substitution**
//! for that toolchain: a structural cost model that
//!
//! 1. builds each EMAC datapath from primitive [`component`]s (carry-chain
//!    adders, barrel shifters, leading-zero detectors, DSP48 multipliers,
//!    registers) whose area/delay/energy are calibrated to 28 nm Virtex-7
//!    characteristics ([`calib::Calib`]), and
//! 2. mirrors the stage structure of paper Figs. 3–5 exactly
//!    ([`emacs::fixed_emac_netlist`], [`emacs::float_emac_netlist`],
//!    [`emacs::posit_emac_netlist`]), with register widths from paper
//!    eqs. (3)–(4).
//!
//! Because every number derives from the same small constant set plus
//! datapath structure, *relative* comparisons between formats — the
//! quantity the paper argues from — are preserved even though absolute
//! values are model-scale (recorded as such in EXPERIMENTS.md).
//!
//! ```
//! use dp_hw::{report, Calib, FormatSpec};
//! use dp_posit::PositFormat;
//!
//! let spec = FormatSpec::Posit(PositFormat::new(8, 0)?);
//! let r = report(spec, 128, Calib::default());
//! assert!(r.fmax_hz > 5e7 && r.luts > 100);
//! # Ok::<(), dp_posit::FormatError>(())
//! ```

pub mod accelerator;
pub mod calib;
pub mod component;
pub mod emacs;
pub mod netlist;
pub mod report;

pub use accelerator::{plan_accelerator, AcceleratorReport, LayerPlan};
pub use calib::Calib;
pub use component::{Component, Kind};
pub use emacs::{emac_netlist, Family, FormatSpec};
pub use netlist::{Netlist, Stage};
pub use report::{paper_grid, report, representative, EmacReport};
