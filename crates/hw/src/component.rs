//! Primitive datapath components with area / delay / energy models.
//!
//! Each constructor maps a netlist-level building block (the boxes in paper
//! Figs. 3–5) onto 7-series FPGA resources: LUT6s + carry chains, DSP48
//! slices and flip-flops. Counts are first-order structural estimates —
//! what a synthesizer produces before aggressive cross-boundary
//! optimization — which is the right fidelity for *comparing formats*.

use crate::calib::Calib;

/// The class of a primitive component (for reporting and sanity checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Carry-chain adder / subtractor / incrementer.
    Adder,
    /// Two's-complement negation (invert + increment).
    TwosComplement,
    /// Logarithmic barrel shifter.
    BarrelShifter,
    /// Leading-zero detector tree.
    Lzd,
    /// Hard multiplier (DSP48).
    Multiplier,
    /// 2:1 multiplexer bank.
    Mux,
    /// Magnitude comparator / clipper.
    Comparator,
    /// Random logic (bit extraction, OR-reduction, exception flags).
    Logic,
    /// Pipeline / accumulator register.
    Register,
}

/// A sized primitive with its resource and timing footprint.
#[derive(Debug, Clone)]
pub struct Component {
    /// What the component is.
    pub kind: Kind,
    /// Descriptive name used in netlist dumps.
    pub name: String,
    /// LUT6 count.
    pub luts: u32,
    /// Flip-flop count.
    pub ffs: u32,
    /// DSP48 slice count.
    pub dsps: u32,
    /// Propagation delay in ns.
    pub delay_ns: f64,
    /// Switching energy per operation in pJ (before the activity factor).
    pub energy_pj: f64,
}

impl Component {
    fn lut_energy(c: &Calib, luts: u32) -> f64 {
        luts as f64 * c.e_lut_fj / 1000.0
    }

    /// `w`-bit carry-chain adder (also models subtract / increment).
    pub fn adder(c: &Calib, name: &str, w: u32) -> Self {
        Component {
            kind: Kind::Adder,
            name: name.into(),
            luts: w,
            ffs: 0,
            dsps: 0,
            delay_ns: c.level_ns() + w as f64 * c.t_carry_per_bit_ns,
            energy_pj: Self::lut_energy(c, w),
        }
    }

    /// `w`-bit two's complement: inverters fold into the adder LUTs.
    pub fn twos_complement(c: &Calib, name: &str, w: u32) -> Self {
        let mut comp = Self::adder(c, name, w);
        comp.kind = Kind::TwosComplement;
        comp
    }

    /// `w`-bit barrel shifter covering shift amounts `0..=max_shift`.
    /// One mux stage per shift-amount bit; a LUT6 packs two 2:1 bit-muxes.
    pub fn barrel_shifter(c: &Calib, name: &str, w: u32, max_shift: u32) -> Self {
        let stages = 32 - max_shift.max(1).leading_zeros(); // ceil(log2(max_shift+1))
        let luts = stages * w.div_ceil(2);
        Component {
            kind: Kind::BarrelShifter,
            name: name.into(),
            luts,
            ffs: 0,
            dsps: 0,
            delay_ns: stages as f64 * c.level_ns(),
            energy_pj: Self::lut_energy(c, luts),
        }
    }

    /// `w`-bit leading-zero detector (tree of LUT6 priority encoders).
    pub fn lzd(c: &Calib, name: &str, w: u32) -> Self {
        // A LUT6 resolves ~4 bits per level; the tree has ceil(log4 w) levels.
        let levels = (32 - w.max(2).leading_zeros()).div_ceil(2).max(1);
        let luts = (w as f64 * 0.75).ceil() as u32;
        Component {
            kind: Kind::Lzd,
            name: name.into(),
            luts,
            ffs: 0,
            dsps: 0,
            delay_ns: levels as f64 * c.level_ns(),
            energy_pj: Self::lut_energy(c, luts),
        }
    }

    /// `a × b`-bit multiplier on DSP48 slices (paper: "optimized for
    /// latency by targeting the on-chip DSP48 slices").
    pub fn multiplier(c: &Calib, name: &str, a: u32, b: u32) -> Self {
        let dsps = a.div_ceil(25).max(1) * b.div_ceil(18).max(1);
        Component {
            kind: Kind::Multiplier,
            name: name.into(),
            luts: 0,
            ffs: 0,
            dsps,
            delay_ns: c.t_dsp_ns * (1.0 + 0.15 * (dsps as f64 - 1.0)),
            energy_pj: dsps as f64 * c.e_dsp_pj,
        }
    }

    /// `w`-bit 2:1 mux bank (two bits per LUT6).
    pub fn mux2(c: &Calib, name: &str, w: u32) -> Self {
        let luts = w.div_ceil(2);
        Component {
            kind: Kind::Mux,
            name: name.into(),
            luts,
            ffs: 0,
            dsps: 0,
            delay_ns: c.level_ns(),
            energy_pj: Self::lut_energy(c, luts),
        }
    }

    /// `w`-bit magnitude comparator + clip logic.
    pub fn comparator(c: &Calib, name: &str, w: u32) -> Self {
        let luts = w.div_ceil(2) + w.div_ceil(2); // compare + select
        Component {
            kind: Kind::Comparator,
            name: name.into(),
            luts,
            ffs: 0,
            dsps: 0,
            delay_ns: c.level_ns() + w as f64 * c.t_carry_per_bit_ns * 0.5,
            energy_pj: Self::lut_energy(c, luts),
        }
    }

    /// Random logic: `luts` LUTs across `levels` serial levels.
    pub fn logic(c: &Calib, name: &str, luts: u32, levels: u32) -> Self {
        Component {
            kind: Kind::Logic,
            name: name.into(),
            luts,
            ffs: 0,
            dsps: 0,
            delay_ns: levels as f64 * c.level_ns(),
            energy_pj: Self::lut_energy(c, luts),
        }
    }

    /// `w`-bit register (area/energy only; its timing overhead enters the
    /// stage model through `Calib::t_ff_ns`).
    pub fn register(c: &Calib, name: &str, w: u32) -> Self {
        Component {
            kind: Kind::Register,
            name: name.into(),
            luts: 0,
            ffs: w,
            dsps: 0,
            delay_ns: 0.0,
            energy_pj: w as f64 * c.e_ff_fj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Calib {
        Calib::default()
    }

    #[test]
    fn adder_scales_linearly_in_area_and_carry() {
        let a8 = Component::adder(&c(), "a", 8);
        let a32 = Component::adder(&c(), "a", 32);
        assert_eq!(a8.luts, 8);
        assert_eq!(a32.luts, 32);
        assert!(a32.delay_ns > a8.delay_ns);
        assert!(a32.delay_ns < 4.0 * a8.delay_ns, "carry chains are fast");
    }

    #[test]
    fn barrel_shifter_stage_count() {
        let s = Component::barrel_shifter(&c(), "sh", 32, 31);
        // 31 -> 5 stages
        assert!((s.delay_ns - 5.0 * c().level_ns()).abs() < 1e-9);
        assert_eq!(s.luts, 5 * 16);
        let s1 = Component::barrel_shifter(&c(), "sh", 8, 1);
        assert!((s1.delay_ns - c().level_ns()).abs() < 1e-9);
    }

    #[test]
    fn lzd_is_logarithmic() {
        let l8 = Component::lzd(&c(), "lzd", 8);
        let l64 = Component::lzd(&c(), "lzd", 64);
        assert!(l64.delay_ns <= 2.0 * l8.delay_ns);
        assert!(l64.luts > l8.luts);
    }

    #[test]
    fn small_multiplier_is_one_dsp() {
        let m = Component::multiplier(&c(), "m", 8, 8);
        assert_eq!(m.dsps, 1);
        assert_eq!(m.luts, 0);
        let big = Component::multiplier(&c(), "m", 32, 32);
        assert!(big.dsps > 1);
        assert!(big.delay_ns > m.delay_ns);
    }

    #[test]
    fn register_contributes_ffs_not_delay() {
        let r = Component::register(&c(), "r", 40);
        assert_eq!(r.ffs, 40);
        assert_eq!(r.delay_ns, 0.0);
        assert!(r.energy_pj > 0.0);
    }
}
