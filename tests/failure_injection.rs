//! Failure injection: exceptional values (NaR / NaN / saturated weights)
//! must propagate predictably through the quantized network rather than
//! silently corrupting results.

use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_emac::Emac;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn tiny_net(seed: u64) -> Mlp {
    Mlp::new(&[3, 4, 2], seed)
}

#[test]
fn nar_weight_poisons_dependent_neurons_only() {
    let fmt = PositFormat::new(8, 0).unwrap();
    let nf = NumericFormat::Posit(fmt);
    let mlp = tiny_net(1);
    let mut q = QuantizedMlp::quantize(&mlp, nf);
    // Inject NaR into neuron 0 of the readout layer only.
    q.layers[1].weight_row_mut(0)[0] = fmt.nar_bits();
    let out = q.forward_bits(&[0.5, 0.25, 0.75]);
    assert_eq!(out[0], fmt.nar_bits(), "poisoned neuron yields NaR");
    assert_ne!(out[1], fmt.nar_bits(), "sibling neuron is unaffected");
}

#[test]
fn nar_bias_poisons_via_set_bias_path() {
    let fmt = PositFormat::new(8, 1).unwrap();
    let nf = NumericFormat::Posit(fmt);
    let mlp = tiny_net(2);
    let mut q = QuantizedMlp::quantize(&mlp, nf);
    q.layers[0].biases_mut()[2] = fmt.nar_bits();
    let out0 = q.forward_bits(&[0.1, 0.2, 0.3]);
    // Hidden NaR passes ReLU (NaR is not negative) and poisons every
    // readout neuron it feeds.
    for &o in &out0 {
        assert_eq!(o, fmt.nar_bits(), "NaR reaches all dependent outputs");
    }
}

#[test]
fn float_nan_input_poisons_network_output() {
    let ffmt = FloatFormat::new(4, 3).unwrap();
    let nf = NumericFormat::Float(ffmt);
    let mlp = tiny_net(3);
    let q = QuantizedMlp::quantize(&mlp, nf);
    // NaN input feature (e.g. a sensor dropout quantized carelessly).
    let out = q.forward_bits(&[f32::NAN, 0.5, 0.5]);
    let any_nan = out
        .iter()
        .any(|&o| matches!(dp_minifloat::decode(ffmt, o), dp_minifloat::FloatClass::NaN));
    assert!(any_nan, "NaN must surface, not vanish");
}

#[test]
fn saturated_weights_still_infer() {
    // Clip-to-max quantization of absurd weights must keep the network
    // runnable (paper: EMACs clip at maximum magnitude, never overflow).
    let nf = NumericFormat::Float(FloatFormat::new(4, 3).unwrap());
    let mut mlp = tiny_net(4);
    for l in &mut mlp.layers {
        for w in l.w.as_mut_slice() {
            *w *= 1e9;
        }
    }
    let q = QuantizedMlp::quantize(&mlp, nf);
    for row in q.layers[0].weight_rows() {
        for &w in row {
            let v = nf.to_f64(w);
            assert!(v.is_finite(), "weights clip, never become Inf");
        }
    }
    let _ = q.infer(&[0.5, 0.5, 0.5]); // must not panic
}

#[test]
fn emac_capacity_is_enforced_in_debug() {
    // The EMAC accumulators are sized by k (paper eqs. 3-4); exceeding the
    // declared capacity is a contract violation caught in debug builds.
    let fmt = PositFormat::new(8, 0).unwrap();
    let mut e = dp_emac::PositEmac::new(fmt, 2);
    e.mac(fmt.one_bits(), fmt.one_bits());
    e.mac(fmt.one_bits(), fmt.one_bits());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        e.mac(fmt.one_bits(), fmt.one_bits());
    }));
    if cfg!(debug_assertions) {
        assert!(result.is_err(), "over-capacity MAC must assert in debug");
    }
}

#[test]
fn quire_poison_clears_on_reset() {
    let fmt = PositFormat::new(8, 0).unwrap();
    let mut e = dp_emac::PositEmac::new(fmt, 4);
    e.mac(fmt.nar_bits(), fmt.one_bits());
    assert_eq!(e.result(), fmt.nar_bits());
    e.reset();
    e.mac(fmt.one_bits(), fmt.one_bits());
    assert_eq!(
        dp_posit::convert::to_f64(fmt, e.result()),
        1.0,
        "reset must clear poison state"
    );
}
