//! Cross-crate consistency: the three independent implementations of
//! "exact dot product then round once" — the quire (dp-posit), the
//! Algorithm-2 EMAC datapath (dp-emac) and the dyadic oracle — must agree,
//! and the DNN-layer plumbing must preserve those semantics.

use deep_positron::NumericFormat;
use dp_emac::{Emac, EmacUnit, FixedEmac, FloatEmac, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::exact::exact_dot;
use dp_posit::{PositFormat, Quire};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn posit_emac_quire_and_oracle_agree() {
    let fmt = PositFormat::new(8, 1).unwrap();
    let mut s = 0x1111_2222_3333_4444u64;
    for _ in 0..200 {
        let len = (xorshift(&mut s) % 16 + 1) as usize;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..len {
            let mut a = (xorshift(&mut s) as u32) & fmt.mask();
            let mut b = (xorshift(&mut s) as u32) & fmt.mask();
            if a == fmt.nar_bits() {
                a = 0;
            }
            if b == fmt.nar_bits() {
                b = 0;
            }
            xs.push(a);
            ys.push(b);
        }
        let mut emac = PositEmac::new(fmt, len as u64);
        for (&x, &y) in xs.iter().zip(&ys) {
            emac.mac(x, y);
        }
        let via_emac = emac.result();
        let via_quire = Quire::dot(fmt, &xs, &ys);
        let via_oracle = exact_dot(fmt, &xs, &ys);
        assert_eq!(via_emac, via_quire);
        assert_eq!(via_quire, via_oracle);
    }
}

#[test]
fn numeric_format_quantize_agrees_with_emac_identity() {
    // bias + 1.0 × x through each EMAC equals quantize(bias) ⊕ x exactly
    // when both are representable.
    let cases: Vec<(NumericFormat, EmacUnit)> = vec![
        (
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
            EmacUnit::Posit(PositEmac::new(PositFormat::new(8, 0).unwrap(), 1)),
        ),
        (
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            EmacUnit::Float(FloatEmac::new(FloatFormat::new(4, 3).unwrap(), 1)),
        ),
        (
            NumericFormat::Fixed(FixedFormat::new(8, 4).unwrap()),
            EmacUnit::Fixed(FixedEmac::new(FixedFormat::new(8, 4).unwrap(), 1)),
        ),
    ];
    for (fmt, mut emac) in cases {
        for (bias, x) in [(0.5f32, 0.25f32), (-1.0, 0.75), (1.5, -0.5), (0.0, 0.0)] {
            let one = fmt.quantize(1.0);
            emac.set_bias(fmt.quantize(bias));
            emac.mac(one, fmt.quantize(x));
            let got = fmt.to_f64(emac.result());
            assert_eq!(got, (bias + x) as f64, "{fmt}: {bias} + {x}");
        }
    }
}

#[test]
fn emac_accumulator_widths_match_paper_equations() {
    // eq. (3) for fixed: wa = ceil(log2 k) + 2n
    assert_eq!(
        FixedEmac::accumulator_width_for(FixedFormat::new(8, 4).unwrap(), 128),
        7 + 16
    );
    // eq. (3) for float: wa = ceil(log2 k) + 2(2^we − 2 + wf) + 2
    assert_eq!(
        FloatEmac::accumulator_width_for(FloatFormat::new(4, 3).unwrap(), 128),
        7 + 2 * 17 + 2
    );
    // eq. (4) for posit: qsize = 2^(es+2)(n−2) + 2 + ceil(log2 k)
    assert_eq!(
        PositEmac::paper_qsize(PositFormat::new(8, 0).unwrap(), 128),
        4 * 6 + 2 + 7
    );
    assert_eq!(
        PositEmac::paper_qsize(PositFormat::new(16, 1).unwrap(), 1024),
        8 * 14 + 2 + 10
    );
    // The quire module computes the same widths independently.
    assert_eq!(
        Quire::paper_width(PositFormat::new(8, 0).unwrap(), 128),
        PositEmac::paper_qsize(PositFormat::new(8, 0).unwrap(), 128) as usize
    );
}

#[test]
fn float_emac_matches_independent_f64_reference() {
    // For e4m3 inputs, products and short sums are exactly representable
    // in f64, so a plain f64 accumulation rounded once is a valid
    // independent reference.
    let fmt = FloatFormat::new(4, 3).unwrap();
    let mut s = 0xaaaa_bbbb_cccc_ddddu64;
    for _ in 0..300 {
        let len = (xorshift(&mut s) % 12 + 1) as usize;
        let mut emac = FloatEmac::new(fmt, len as u64);
        let mut reference = 0f64;
        for _ in 0..len {
            let a = (xorshift(&mut s) as u32) & fmt.mask();
            let b = (xorshift(&mut s) as u32) & fmt.mask();
            let (va, vb) = (
                dp_minifloat::convert::to_f64(fmt, a),
                dp_minifloat::convert::to_f64(fmt, b),
            );
            if !va.is_finite() || !vb.is_finite() {
                continue;
            }
            emac.mac(a, b);
            reference += va * vb; // exact in f64 for these magnitudes
        }
        let got = dp_minifloat::convert::to_f64(fmt, emac.result());
        let want = dp_minifloat::convert::to_f64(
            fmt,
            dp_minifloat::convert::from_f64_saturating(fmt, reference),
        );
        let matches = got == want || (got == 0.0 && want == 0.0);
        assert!(matches, "emac {got} vs reference {want}");
    }
}

#[test]
fn quantized_network_layers_use_emac_semantics() {
    // A hand-built one-layer network must produce exactly
    // round(bias + Σ wᵢxᵢ) per neuron, which we check against the quire.
    use deep_positron::{Mlp, QuantizedMlp};
    let fmt = PositFormat::new(8, 0).unwrap();
    let nf = NumericFormat::Posit(fmt);
    let mut mlp = Mlp::new(&[3, 2], 9);
    let w = [[0.5f32, -0.25, 1.0], [0.125, 0.75, -0.5]];
    for (j, row) in w.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            mlp.layers[0].w.set(j, i, v);
        }
        mlp.layers[0].b[j] = 0.25 * (j as f32 + 1.0);
    }
    let q = QuantizedMlp::quantize(&mlp, nf);
    let x = [0.5f32, 0.25, 0.75];
    let out = q.forward_bits(&x);
    for j in 0..2 {
        let mut quire = Quire::new(fmt, 3);
        quire.add_posit(nf.quantize(mlp.layers[0].b[j]));
        for i in 0..3 {
            quire.add_product(nf.quantize(w[j][i]), nf.quantize(x[i]));
        }
        assert_eq!(out[j], quire.to_posit(), "neuron {j}");
    }
}
