//! End-to-end integration: train → quantize → EMAC inference → streaming
//! simulation, on the quick schedule (debug-build friendly).

use deep_positron::ablation::compare_exact_vs_inexact;
use deep_positron::experiments::paper_tasks;
use deep_positron::streaming::simulate;
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

#[test]
fn train_quantize_infer_all_formats_on_iris() {
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    assert!(
        iris.f32_test_accuracy > 0.85,
        "f32 baseline {}",
        iris.f32_test_accuracy
    );
    let formats = [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Posit(PositFormat::new(8, 2).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Float(FloatFormat::new(3, 4).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 7).unwrap()),
    ];
    for fmt in formats {
        let q = QuantizedMlp::quantize(&iris.mlp, fmt);
        let acc = q.accuracy(&iris.split.test);
        assert!(
            acc > 0.6,
            "{fmt}: accuracy {acc} collapsed (f32 {})",
            iris.f32_test_accuracy
        );
    }
}

#[test]
fn eight_bit_posit_stays_close_to_f32_on_iris() {
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    let q = QuantizedMlp::quantize(
        &iris.mlp,
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
    );
    let acc = q.accuracy(&iris.split.test);
    assert!(
        acc >= iris.f32_test_accuracy - 0.06,
        "posit8 {acc} vs f32 {} (paper: matches on Iris)",
        iris.f32_test_accuracy
    );
}

#[test]
fn streaming_simulation_equals_functional_inference() {
    let tasks = paper_tasks(true, 7);
    let iris = &tasks[1];
    for fmt in [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
    ] {
        let q = QuantizedMlp::quantize(&iris.mlp, fmt);
        let inputs: Vec<Vec<f32>> = iris.split.test.features.iter().take(15).cloned().collect();
        let (preds, report) = simulate(&q, &inputs);
        let expect: Vec<usize> = inputs.iter().map(|x| q.infer(x)).collect();
        assert_eq!(preds, expect, "{fmt}");
        assert!(report.first_latency_cycles > 0);
        assert!(report.total_cycles >= report.first_latency_cycles);
    }
}

#[test]
fn wbc_full_pipeline_with_8bit_posit() {
    let tasks = paper_tasks(true, 42);
    let wbc = &tasks[0];
    assert_eq!(wbc.split.test.len(), 190, "paper inference size");
    let q = QuantizedMlp::quantize(
        &wbc.mlp,
        NumericFormat::Posit(PositFormat::new(8, 2).unwrap()),
    );
    let acc = q.accuracy(&wbc.split.test);
    assert!(
        acc >= wbc.f32_test_accuracy - 0.08,
        "posit8 {acc} vs f32 {}",
        wbc.f32_test_accuracy
    );
}

#[test]
fn mushroom_subset_with_8bit_formats() {
    let tasks = paper_tasks(true, 42);
    let mush = &tasks[2];
    assert_eq!(mush.split.test.len(), 2708, "paper inference size");
    let mut subset = mush.split.test.clone();
    subset.features.truncate(250);
    subset.labels.truncate(250);
    for fmt in [
        NumericFormat::Posit(PositFormat::new(8, 1).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
    ] {
        let q = QuantizedMlp::quantize(&mush.mlp, fmt);
        let acc = q.accuracy(&subset);
        assert!(acc > 0.85, "{fmt}: {acc}");
    }
}

#[test]
fn ablation_exact_never_collapses_relative_to_inexact() {
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    for n in [5u32, 6, 7, 8] {
        let q = QuantizedMlp::quantize(
            &iris.mlp,
            NumericFormat::Posit(PositFormat::new(n, 0).unwrap()),
        );
        let r = compare_exact_vs_inexact(&q, &iris.split.test, 50);
        assert!(
            r.exact_accuracy >= r.inexact_accuracy - 0.08,
            "n={n}: exact {} vs inexact {}",
            r.exact_accuracy,
            r.inexact_accuracy
        );
    }
}
