//! The paper's qualitative claims, asserted against this reproduction
//! (DESIGN.md experiment E8 plus shape checks for each table/figure).
//!
//! These tests pin the *shape* of every result — who wins, where, by
//! roughly how much — not the absolute numbers (our substrate is an
//! analytical FPGA model and synthetic UCI stand-ins; see EXPERIMENTS.md).

use deep_positron::experiments::{best_config_on, paper_tasks};
use dp_hw::{emac_netlist, paper_grid, report, representative, Calib, Family, FormatSpec};
use dp_posit::PositFormat;

const K: u64 = 128;

fn calib() -> Calib {
    Calib::default()
}

/// Table I: the regime run-length code.
#[test]
fn table1_regime_interpretation() {
    let f = PositFormat::new(6, 0).unwrap();
    let expect = [
        (0b0_00010u32, -3),
        (0b0_00100, -2),
        (0b0_01000, -1),
        (0b0_10000, 0),
        (0b0_11000, 1),
        (0b0_11100, 2),
    ];
    for (bits, k) in expect {
        assert_eq!(dp_posit::decode::regime(f, bits), Some(k), "{bits:#b}");
    }
}

/// Fig. 2a: 7-bit posit values cluster in [-1, 1].
#[test]
fn fig2_posit7_clusters_in_unit_range() {
    let f = PositFormat::new(7, 0).unwrap();
    let total = f.reals().count();
    let inside = f
        .reals()
        .filter(|&b| dp_posit::convert::to_f64(f, b).abs() <= 1.0)
        .count();
    assert!(
        inside * 2 > total,
        "{inside}/{total} posit<7,0> values in [-1,1]"
    );
}

/// Fig. 6: the fixed-point EMAC achieves the lowest datapath latency
/// (highest Fmax) — "as expected ... it has no exponential parameter,
/// thus a narrower accumulator".
#[test]
fn fig6_fixed_point_has_highest_fmax() {
    for n in 5..=8u32 {
        let grid = paper_grid(n);
        let fixed_fmax = grid
            .iter()
            .filter(|s| s.family() == Family::Fixed)
            .map(|&s| report(s, K, calib()).fmax_hz)
            .fold(0.0, f64::max);
        for spec in grid.iter().filter(|s| s.family() != Family::Fixed) {
            let f = report(*spec, K, calib()).fmax_hz;
            assert!(
                fixed_fmax > f,
                "n={n}: fixed {fixed_fmax:.2e} vs {} {f:.2e}",
                spec.label()
            );
        }
    }
}

/// Fig. 6: "In general, the posit EMAC can operate at a higher frequency
/// for a given dynamic range than the floating point EMAC": for every
/// float configuration there is a posit configuration of the same width
/// with at least that dynamic range and at least that Fmax.
#[test]
fn fig6_posit_dominates_float_at_matched_dynamic_range() {
    for n in 5..=8u32 {
        let grid = paper_grid(n);
        let posits: Vec<(f64, f64)> = grid
            .iter()
            .filter(|s| s.family() == Family::Posit)
            .map(|&s| {
                let r = report(s, K, calib());
                (r.dynamic_range_log10, r.fmax_hz)
            })
            .collect();
        for spec in grid.iter().filter(|s| s.family() == Family::Float) {
            let rf = report(*spec, K, calib());
            let dominated = posits
                .iter()
                .any(|&(dr, fmax)| dr >= rf.dynamic_range_log10 && fmax >= rf.fmax_hz);
            assert!(
                dominated,
                "n={n}: no posit dominates {} (DR {:.2}, {:.1} MHz)",
                spec.label(),
                rf.dynamic_range_log10,
                rf.fmax_hz / 1e6
            );
        }
    }
}

/// §IV-A: "At lower values of n ≤ 7, the posit number system has higher
/// dynamic range" than float at the same width (comparing the maxima of
/// the swept configurations).
#[test]
fn posit_has_higher_dynamic_range_at_low_n() {
    for n in 5..=7u32 {
        let grid = paper_grid(n);
        let max_dr = |fam: Family| {
            grid.iter()
                .filter(|s| s.family() == fam)
                .map(|s| s.dynamic_range_log10())
                .fold(0.0, f64::max)
        };
        assert!(
            max_dr(Family::Posit) > max_dr(Family::Float),
            "n={n}: posit {} vs float {}",
            max_dr(Family::Posit),
            max_dr(Family::Float)
        );
    }
}

/// Fig. 7: fixed point has the lowest EDP at every width; float and posit
/// EDPs are within an order of magnitude of each other ("the EDPs of the
/// floating point and posit EMACs are similar").
#[test]
fn fig7_edp_ordering() {
    for n in 5..=8u32 {
        let edp = |fam: Family| report(representative(n, fam), K, calib()).edp;
        let (fx, fl, po) = (edp(Family::Fixed), edp(Family::Float), edp(Family::Posit));
        assert!(
            fx < fl && fx < po,
            "n={n}: fixed {fx:.2e} fl {fl:.2e} po {po:.2e}"
        );
        let ratio = (fl / po).max(po / fl);
        assert!(ratio < 10.0, "n={n}: float/posit EDP ratio {ratio}");
    }
}

/// Fig. 8: posit generally consumes the most LUTs, float is second, fixed
/// is by far the smallest.
#[test]
fn fig8_lut_ordering() {
    for n in 5..=8u32 {
        let luts = |fam: Family| emac_netlist(representative(n, fam), K, calib()).luts();
        let (fx, fl, po) = (
            luts(Family::Fixed),
            luts(Family::Float),
            luts(Family::Posit),
        );
        assert!(po > fl, "n={n}: posit {po} vs float {fl}");
        assert!(fl > fx, "n={n}: float {fl} vs fixed {fx}");
        assert!(fx * 3 < po, "n={n}: fixed should be several times smaller");
    }
}

/// Fmax values land in the paper's Fig. 6 axis range (~1e8 Hz).
#[test]
fn fmax_magnitudes_are_paper_scale() {
    for n in 5..=8u32 {
        for spec in paper_grid(n) {
            let f = report(spec, K, calib()).fmax_hz;
            assert!(
                (5e7..5e8).contains(&f),
                "{}: {:.1} MHz",
                spec.label(),
                f / 1e6
            );
        }
    }
}

/// Table II shape on the quick schedule: 8-bit posit matches or beats the
/// other 8-bit formats (within noise) and stays close to the 32-bit float
/// baseline; the paper's fixed-point configuration trails.
#[test]
fn table2_accuracy_ordering_quick() {
    let tasks = paper_tasks(true, 42);
    // Subsample Mushroom's test set: debug-build EMAC inference over
    // 8 configs × 2708 samples × 117 inputs is needlessly slow for a
    // shape check.
    let limit = 350;
    let mut posit_total = 0.0;
    let mut float_total = 0.0;
    let mut fixed_total = 0.0;
    let mut f32_total = 0.0;
    for task in &tasks {
        let p = best_config_on(task, Family::Posit, 8, limit);
        let fl = best_config_on(task, Family::Float, 8, limit);
        let fx = best_config_on(task, Family::Fixed, 8, limit);
        posit_total += p.accuracy;
        float_total += fl.accuracy;
        fixed_total += fx.accuracy;
        f32_total += task.f32_test_accuracy;
        assert!(
            p.accuracy >= fx.accuracy - 0.01,
            "{}: posit {} vs fixed {}",
            task.name,
            p.accuracy,
            fx.accuracy
        );
    }
    // Averaged over the three datasets: posit ≥ float − noise, and both
    // track the f32 baseline; fixed (Q1.7) trails by several points.
    assert!(
        posit_total >= float_total - 0.03,
        "posit {posit_total} vs float {float_total}"
    );
    assert!(
        posit_total >= f32_total - 0.05,
        "posit {posit_total} vs f32 {f32_total}"
    );
    assert!(
        posit_total > fixed_total + 0.05,
        "posit {posit_total} vs fixed {fixed_total}"
    );
}

/// §IV-B: "the best performance drops sub 8-bit by [0-4.21]% compared to
/// 32-bit floating-point" — on Iris, the best posit config at n ∈ {6,7}
/// stays within a few points of f32.
#[test]
fn sub_8bit_degradation_is_bounded_on_iris() {
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    for n in [6u32, 7] {
        let best = best_config_on(iris, Family::Posit, n, usize::MAX);
        assert!(
            best.accuracy >= iris.f32_test_accuracy - 0.08,
            "n={n}: posit {} vs f32 {}",
            best.accuracy,
            iris.f32_test_accuracy
        );
    }
}

/// Paper eq. (4) / §III-D: the posit quire width for the paper's headline
/// configuration.
#[test]
fn quire_width_headline_configuration() {
    // p8e0, k=128 products: 2^2·6 + 2 + 7 = 33 bits.
    assert_eq!(
        dp_emac::PositEmac::paper_qsize(PositFormat::new(8, 0).unwrap(), 128),
        33
    );
}

/// The representative sweep labels match the families they claim.
#[test]
fn representative_specs_are_well_formed() {
    for n in 5..=8u32 {
        assert!(matches!(
            representative(n, Family::Posit),
            FormatSpec::Posit(_)
        ));
        assert!(matches!(
            representative(n, Family::Float),
            FormatSpec::Float(_)
        ));
        assert!(matches!(
            representative(n, Family::Fixed),
            FormatSpec::Fixed(_)
        ));
    }
}
