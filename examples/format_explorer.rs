//! Format explorer: enumerate and compare the ≤8-bit formats the paper
//! evaluates — value counts, dynamic range, density near [−1, 1].
//!
//! Run with: `cargo run --release --example format_explorer`

use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn main() {
    println!(
        "{:<14} {:>8} {:>12} {:>14} {:>16}",
        "format", "values", "max", "min>0", "dyn range (dec)"
    );
    println!("{}", "-".repeat(70));
    for es in 0..=2u32 {
        let f = PositFormat::new(8, es).unwrap();
        println!(
            "{:<14} {:>8} {:>12.4e} {:>14.4e} {:>16.2}",
            f.to_string(),
            f.reals().count(),
            f.max_value(),
            f.min_value(),
            f.dynamic_range_log10()
        );
    }
    for we in 2..=5u32 {
        let f = FloatFormat::new(we, 7 - we).unwrap();
        println!(
            "{:<14} {:>8} {:>12.4e} {:>14.4e} {:>16.2}",
            f.to_string(),
            f.finites().count(),
            f.max_value(),
            f.min_value(),
            f.dynamic_range_log10()
        );
    }
    for q in [4u32, 6, 7] {
        let f = FixedFormat::new(8, q).unwrap();
        println!(
            "{:<14} {:>8} {:>12.4e} {:>14.4e} {:>16.2}",
            f.to_string(),
            256,
            f.max_value(),
            f.min_value(),
            f.dynamic_range_log10()
        );
    }

    // Density near the DNN operating range [-1, 1] — why posits fit DNNs
    // (paper Fig. 2): count representable values inside it.
    println!("\nvalues inside [-1, 1]:");
    let p8 = PositFormat::new(8, 0).unwrap();
    let inside_posit = p8
        .reals()
        .filter(|&b| dp_posit::convert::to_f64(p8, b).abs() <= 1.0)
        .count();
    println!(
        "  posit<8,0>:   {inside_posit:>3} of {}",
        p8.reals().count()
    );
    let e4m3 = FloatFormat::new(4, 3).unwrap();
    let inside_float = e4m3
        .finites()
        .filter(|&b| dp_minifloat::convert::to_f64(e4m3, b).abs() <= 1.0)
        .count();
    println!(
        "  float<8,4,3>: {inside_float:>3} of {}",
        e4m3.finites().count()
    );
    let q4 = FixedFormat::new(8, 4).unwrap();
    let inside_fixed = q4.raws().filter(|&r| q4.to_f64(r).abs() <= 1.0).count();
    println!("  fixed<8,4>:   {inside_fixed:>3} of 256");

    // Worst-case decimal error quantizing uniform [0, 1) values.
    println!("\nmax quantization error on a [0,1) grid:");
    type Quantizer = Box<dyn Fn(f64) -> f64>;
    let quantizers: Vec<(&str, Quantizer)> = vec![
        (
            "posit<8,0>",
            Box::new(move |v| dp_posit::convert::to_f64(p8, dp_posit::convert::from_f64(p8, v))),
        ),
        (
            "float<8,4,3>",
            Box::new(move |v| {
                dp_minifloat::convert::to_f64(e4m3, dp_minifloat::convert::from_f64(e4m3, v))
            }),
        ),
        ("fixed<8,4>", Box::new(move |v| q4.to_f64(q4.from_f64(v)))),
    ];
    for (label, f) in quantizers {
        let mut worst = 0f64;
        for i in 0..1000 {
            let v = i as f64 / 1000.0;
            worst = worst.max((f(v) - v).abs());
        }
        println!("  {label:<14} {worst:.5}");
    }
}
