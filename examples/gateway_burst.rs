//! Mixed-format traffic at 2× gateway capacity: load shedding in action.
//!
//! Trains one float MLP on Iris, quantizes it into the paper's three
//! 8-bit families (posit, minifloat, fixed), registers all of them behind
//! a `dp_gateway` with a deliberately small submission ring, then slams
//! the gateway with a burst of twice its capacity while dispatch is
//! paused. The overload policy sheds the overflow with typed verdicts
//! (nothing blocks, nothing hangs); the admitted half completes
//! bit-identically to per-sample `forward_bits`, and the metrics snapshot
//! accounts for every single request.
//!
//! Run with `cargo run --release --example gateway_burst`.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_gateway::{Admission, Gateway, GatewayError, OverloadPolicy, RateLimit};
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::time::Instant;

fn main() {
    let split = dp_datasets::iris::load(5).split(50, 5).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 5);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 0.01,
            seed: 5,
        },
    );

    let capacity = 12usize;
    let gw = Gateway::builder()
        .chunk_samples(16)
        .queue_capacity(capacity)
        .policy(OverloadPolicy::ShedNewest)
        .rate_limit("iris", RateLimit::per_sec(1_000_000.0))
        .build();
    println!(
        "gateway: {} worker(s), ring capacity {capacity} requests, policy {}\n",
        gw.engine().workers(),
        gw.policy().as_str()
    );

    let formats = [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
    ];
    let models: Vec<(dp_serve::ModelKey, QuantizedMlp)> = formats
        .into_iter()
        .map(|fmt| {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let key = gw
                .registry()
                .register("iris", q.clone())
                .expect("paper formats have EMAC datapaths");
            (key, q)
        })
        .collect();
    for key in gw.registry().keys() {
        println!("registered {key}");
    }

    // The burst: 2× ring capacity, round-robin across the three formats,
    // landing while dispatch is paused so the ring genuinely fills (on an
    // idle machine the dispatcher would otherwise keep up with us).
    let request: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(32)
        .cloned()
        .collect();
    let burst = 2 * capacity;
    gw.pause_dispatch();
    let t = Instant::now();
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for r in 0..burst {
        let (key, _) = &models[r % models.len()];
        match gw.try_submit_forward(key, request.clone()) {
            Admission::Admitted(handle) => admitted.push((r, handle)),
            Admission::QueueFull => shed += 1,
            other => panic!("unexpected verdict: {other:?}"),
        }
    }
    let admit_elapsed = t.elapsed();
    println!(
        "\nburst: {burst} requests submitted in {:.1} µs ({:.1} ns/verdict, never blocking)",
        admit_elapsed.as_secs_f64() * 1e6,
        admit_elapsed.as_nanos() as f64 / burst as f64
    );
    println!(
        "  admitted {} (ring capacity), shed {shed} with typed QueueFull verdicts",
        admitted.len()
    );
    assert_eq!(admitted.len() + shed, burst);

    gw.resume_dispatch();
    let mut served_samples = 0usize;
    for (r, handle) in admitted {
        let (key, q) = &models[r % models.len()];
        match handle.wait() {
            Ok(bits) => {
                let direct: Vec<Vec<u32>> = request.iter().map(|x| q.forward_bits(x)).collect();
                assert_eq!(bits, direct, "{key}: gateway output diverged");
                served_samples += bits.len();
            }
            Err(GatewayError::Shed) => unreachable!("ShedNewest never evicts admitted requests"),
            Err(e) => panic!("{key}: {e}"),
        }
    }
    gw.wait_idle();
    println!(
        "  admitted half served {served_samples} samples, all bit-identical to forward_bits ✓"
    );

    let snap = gw.snapshot();
    assert_eq!(snap.admitted + snap.shed_total(), snap.submitted);
    println!(
        "\naccounting: submitted {} = admitted {} + shed {} (completed {}, failed {})",
        snap.submitted,
        snap.admitted,
        snap.shed_total(),
        snap.completed,
        snap.failed
    );
    println!("\nlive metrics snapshot:\n{}", snap.to_json());
}
