//! Quickstart: posit arithmetic, exact accumulation, and a quantized
//! Deep Positron network in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use deep_positron::experiments::paper_tasks;
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_emac::{Emac, PositEmac};
use dp_posit::{PositFormat, Quire, P8E0};

fn main() {
    // --- 1. Typed posit arithmetic -------------------------------------
    let a = P8E0::from_f64(1.5);
    let b = P8E0::from_f64(0.25);
    println!("p8e0: {a} + {b} = {}", a + b);
    println!("p8e0: {a} × {b} = {}", a * b);
    println!(
        "p8e0: maxpos = {}, minpos = {}",
        P8E0::MAX,
        P8E0::MIN_POSITIVE
    );

    // --- 2. Exact accumulation: the quire ------------------------------
    // maxpos·1 − maxpos·1 + minpos·1 : a rounding MAC loses the minpos.
    let fmt = PositFormat::new(8, 2).unwrap();
    let one = fmt.one_bits();
    let mut quire = Quire::new(fmt, 4);
    quire.add_product(fmt.maxpos_bits(), one);
    quire.sub_product(fmt.maxpos_bits(), one);
    quire.add_product(fmt.minpos_bits(), one);
    println!(
        "quire survives catastrophic cancellation: {} (minpos = {})",
        dp_posit::convert::to_f64(fmt, quire.to_posit()),
        fmt.min_value(),
    );

    // --- 3. The EMAC soft core (paper Fig. 5) --------------------------
    let mut emac = PositEmac::new(fmt, 3);
    emac.set_bias(one);
    emac.mac(fmt.one_bits(), fmt.one_bits());
    println!(
        "EMAC: bias 1.0 + 1.0×1.0 = {}",
        dp_posit::convert::to_f64(fmt, emac.result())
    );

    // --- 4. A Deep Positron network on Iris ----------------------------
    println!("\ntraining the Iris model (quick schedule)...");
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    println!(
        "32-bit float test accuracy: {:.1}%",
        100.0 * iris.f32_test_accuracy
    );
    for format in [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Posit(PositFormat::new(6, 0).unwrap()),
    ] {
        let q = QuantizedMlp::quantize(&iris.mlp, format);
        println!(
            "{format} EMAC inference accuracy: {:.1}%",
            100.0 * q.accuracy(&iris.split.test)
        );
    }
}
