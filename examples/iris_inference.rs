//! End-to-end Deep Positron on Iris: train in 32-bit float, quantize to
//! every 8-bit candidate of each family, run EMAC inference, and report a
//! Table II-style comparison.
//!
//! Run with: `cargo run --release --example iris_inference`

use deep_positron::experiments::{candidate_formats, paper_tasks};
use deep_positron::QuantizedMlp;
use dp_hw::Family;

fn main() {
    println!("training the Iris MLP (4-16-3, full schedule)...");
    let tasks = paper_tasks(false, 42);
    let iris = &tasks[1];
    println!(
        "32-bit float baseline: {:.2}% on {} held-out flowers\n",
        100.0 * iris.f32_test_accuracy,
        iris.split.test.len()
    );
    println!("{:<16} {:>10} {:>12}", "format", "accuracy", "vs f32 (pp)");
    println!("{}", "-".repeat(42));
    for family in [Family::Posit, Family::Float, Family::Fixed] {
        for format in candidate_formats(family, 8) {
            let q = QuantizedMlp::quantize(&iris.mlp, format);
            let acc = q.accuracy(&iris.split.test);
            println!(
                "{:<16} {:>9.2}% {:>+12.2}",
                format.to_string(),
                100.0 * acc,
                100.0 * (acc - iris.f32_test_accuracy)
            );
        }
    }
    println!("\npaper Table II (real UCI Iris): posit 98%, float 96%, fixed 92%, f32 98%");
}
