//! Drive a `net_serve` listener over real TCP — the client half of the
//! e2e CI job. Each mode exercises one acceptance property and exits
//! non-zero on any violation, so a shell driver can just check status.
//!
//! ```text
//! cargo run --release --example net_client -- ADDR MODE
//!
//! MODE:
//!   verify     train the same seed-42 model locally; forward + classify
//!              every format over the wire and demand bit-identity with
//!              in-process forward_bits / infer
//!   load N     N pipelined classify requests, mixed formats, a tight
//!              deadline on every 5th; prints a status tally
//!   deadline   queue a backlog, then a 1 ms-deadline request behind it;
//!              demand the DeadlineExceeded wire status
//!   malformed  send a garbage opcode and a truncated frame; demand the
//!              ProtocolError verdict and connection close
//!   scrape     print the /metrics exposition body
//!   shutdown   request a graceful drain; demand the ShutdownOk ack
//! ```

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_net::{scrape_metrics, NetClient, ResponseBody, WireStatus};
use dp_posit::PositFormat;
use std::io::{Read, Write};
use std::net::TcpStream;

fn formats() -> [NumericFormat; 3] {
    [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
    ]
}

/// The same deterministic model `net_serve` trains (seed 42 throughout).
fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );
    (mlp, split)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().expect("usage: net_client ADDR MODE [N]");
    let mode = args.next().expect("usage: net_client ADDR MODE [N]");
    match mode.as_str() {
        "verify" => verify(&addr),
        "load" => {
            let n: usize = args.next().map_or(50, |s| s.parse().expect("load count"));
            load(&addr, n);
        }
        "deadline" => deadline(&addr),
        "malformed" => malformed(&addr),
        "scrape" => {
            print!("{}", scrape_metrics(&addr).expect("scrape /metrics"));
        }
        "shutdown" => shutdown(&addr),
        other => panic!("unknown mode {other}"),
    }
}

fn verify(addr: &str) {
    let (mlp, split) = trained_iris();
    let mut client = NetClient::connect(addr).expect("connect");
    let xs: Vec<Vec<f32>> = split.test.features.iter().take(10).cloned().collect();
    for fmt in formats() {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        let fmt_s = fmt.to_string();

        let wire = client
            .forward("iris", &fmt_s, 0, xs.clone())
            .expect("forward io");
        let local: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        assert_eq!(
            wire.body,
            ResponseBody::ForwardOk(local),
            "forward bits diverge for {fmt_s}"
        );

        let wire = client
            .classify("iris", &fmt_s, 0, xs.clone())
            .expect("classify io");
        let local: Vec<u32> = xs.iter().map(|x| q.infer(x) as u32).collect();
        assert_eq!(
            wire.body,
            ResponseBody::ClassifyOk(local),
            "classes diverge for {fmt_s}"
        );
        println!("verify {fmt_s}: bit-identical over the wire");
    }
    println!("VERIFY OK");
}

fn load(addr: &str, n: usize) {
    let (_, split) = trained_iris();
    let mut client = NetClient::connect(addr).expect("connect");
    let fmts: Vec<String> = formats().iter().map(|f| f.to_string()).collect();
    let xs: Vec<Vec<f32>> = split.test.features.iter().take(8).cloned().collect();
    let mut sent = Vec::new();
    let mut tally: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for i in 0..n {
        // Every 5th request carries a 1 ms deadline: under concurrent
        // load some expire, and the e2e conservation check absorbs both
        // outcomes.
        let deadline_ms = if i % 5 == 4 { 1 } else { 0 };
        let req = client.classify_request("iris", &fmts[i % fmts.len()], deadline_ms, xs.clone());
        client.send(&req).expect("send");
        sent.push(req);
        // Stay inside the default per-connection inflight window.
        if sent.len() == 8 {
            for req in sent.drain(..) {
                let resp = client.recv().expect("recv");
                assert_eq!(resp.id, req.id());
                *tally.entry(resp.status().as_str()).or_default() += 1;
            }
        }
    }
    for req in sent.drain(..) {
        let resp = client.recv().expect("recv");
        assert_eq!(resp.id, req.id());
        *tally.entry(resp.status().as_str()).or_default() += 1;
    }
    let line: Vec<String> = tally.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("LOAD {}", line.join(" "));
    let total: usize = tally.values().sum();
    assert_eq!(total, n, "every request must get a typed verdict");
}

fn deadline(addr: &str) {
    let (_, split) = trained_iris();
    let mut client = NetClient::connect(addr).expect("connect");
    let fmt = formats()[0].to_string();
    // A backlog of fat no-deadline requests, then a 1 ms-deadline straggler
    // pipelined behind them: its queue wait is the backlog's service time,
    // so the dispatcher must expire it (never serve it late).
    let fat: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(2000)
        .cloned()
        .collect();
    let backlog: Vec<_> = (0..6)
        .map(|_| client.classify_request("iris", &fmt, 0, fat.clone()))
        .collect();
    for req in &backlog {
        client.send(req).expect("send backlog");
    }
    let doomed = client.classify_request("iris", &fmt, 1, split.test.features.clone());
    client.send(&doomed).expect("send doomed");
    for req in &backlog {
        let resp = client.recv().expect("recv backlog");
        assert_eq!(resp.id, req.id());
        assert_eq!(resp.status(), WireStatus::Ok);
    }
    let resp = client.recv().expect("recv doomed");
    assert_eq!(resp.id, doomed.id());
    assert_eq!(
        resp.status(),
        WireStatus::DeadlineExceeded,
        "expected the straggler to expire, got {:?}",
        resp.body
    );
    println!("DEADLINE status={}", resp.status());
}

fn malformed(addr: &str) {
    // Garbage opcode: the server must answer ProtocolError, then close.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let payload = [0x77u8, 0, 0, 0, 0, 0, 0, 0, 0];
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .expect("write len");
    raw.write_all(&payload).expect("write payload");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read verdict");
    assert!(reply.len() > 4, "no protocol-error reply");
    assert_eq!(
        reply[4],
        WireStatus::ProtocolError as u8,
        "expected protocol_error status byte"
    );

    // Truncated frame: claim 64 bytes, send 8, hang up. No reply to
    // read; the server's protocol_errors counter absorbs it.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.write_all(&64u32.to_le_bytes()).expect("write len");
    raw.write_all(&[0u8; 8]).expect("write partial");
    drop(raw);
    println!("MALFORMED OK");
}

fn shutdown(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect");
    let ack = client.shutdown_server().expect("shutdown io");
    assert_eq!(ack.body, ResponseBody::ShutdownOk, "drain not acknowledged");
    println!("SHUTDOWN ACK");
}
