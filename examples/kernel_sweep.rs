//! Which slice-level MAC kernel serves each registered model?
//!
//! Trains one float MLP on Iris, quantizes it across the three format
//! families and all three kernel bands (n ≤ 8 product table, 9–16 batched
//! fused, > 16 scalar), registers everything in one `dp_serve` engine,
//! prints the row kernel each model's layers selected plus the tile
//! kernel the serving chunk width promotes it to, and verifies a served
//! batch stays bit-identical to per-sample `forward_bits` on every model.
//!
//! Run with `cargo run --release --example kernel_sweep`.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::{EngineConfig, ServeEngine};

fn main() {
    let split = dp_datasets::iris::load(17).split(50, 17).normalized();
    let mut mlp = Mlp::new(&[4, 12, 3], 17);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 0.01,
            seed: 17,
        },
    );

    let formats = [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Posit(PositFormat::new(16, 1).unwrap()),
        NumericFormat::Posit(PositFormat::new(17, 1).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Float(FloatFormat::new(5, 10).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(16, 10).unwrap()),
    ];

    let chunk_samples = 32;
    let engine = ServeEngine::new(EngineConfig {
        chunk_samples,
        ..EngineConfig::default()
    });
    println!("kernel selection per registered model (layer dims 4-12-3):\n");
    println!(
        "{:<22} {:>6}  {:<34} tile kernel (chunk = {chunk_samples})",
        "model", "bits", "row kernel (one per layer)"
    );
    let mut models = Vec::new();
    for fmt in formats {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        let kernels = q.layer_kernels().expect("low-precision format");
        let tiles = q
            .layer_tile_kernels(chunk_samples)
            .expect("low-precision format");
        let key = engine
            .registry()
            .register("iris", q.clone())
            .expect("all sweep formats have EMAC datapaths");
        let rendered: Vec<String> = kernels.iter().map(|k| k.to_string()).collect();
        let tile_rendered: Vec<String> = tiles.iter().map(|k| k.to_string()).collect();
        println!(
            "{:<22} {:>6}  {:<34} {}",
            key.to_string(),
            fmt.n(),
            rendered.join(", "),
            tile_rendered.join(", ")
        );
        models.push((key, q));
    }

    // Every model serves a batch bit-identically to forward_bits — the
    // kernels are a speed story, never a numerics story.
    let batch: Vec<Vec<f32>> = split.test.features.iter().take(40).cloned().collect();
    for (key, q) in &models {
        let served = engine
            .submit_forward(key, batch.clone())
            .expect("registered model")
            .wait()
            .expect("serving succeeded");
        let reference: Vec<Vec<u32>> = batch.iter().map(|x| q.forward_bits(x)).collect();
        assert_eq!(served, reference, "{key}: served != forward_bits");
    }
    println!(
        "\nverified: {} models × {} samples served bit-identical to forward_bits",
        models.len(),
        batch.len()
    );
}
