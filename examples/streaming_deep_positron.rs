//! Cycle-accurate streaming inference (paper Fig. 1 / §III-E): layers of
//! EMAC arrays with local memories, pipelined across inputs. Reports
//! latency and throughput in cycles and — using the synthesis model's
//! Fmax — in wall-clock terms.
//!
//! Run with: `cargo run --release --example streaming_deep_positron`

use deep_positron::experiments::paper_tasks;
use deep_positron::streaming::{layer_cycles, simulate};
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_hw::{report, Calib, FormatSpec};
use dp_posit::PositFormat;

fn main() {
    println!("training the Iris model (quick schedule)...");
    let tasks = paper_tasks(true, 42);
    let iris = &tasks[1];
    let fmt = PositFormat::new(8, 0).unwrap();
    let q = QuantizedMlp::quantize(&iris.mlp, NumericFormat::Posit(fmt));

    let inputs: Vec<Vec<f32>> = iris.split.test.features.clone();
    let (preds, rep) = simulate(&q, &inputs);
    let correct = preds
        .iter()
        .zip(&iris.split.test.labels)
        .filter(|(p, y)| p == y)
        .count();

    let hw = report(FormatSpec::Posit(fmt), 128, Calib::default());
    println!(
        "\nDeep Positron streaming pipeline — posit<8,0>, topology {:?}",
        q.dims()
    );
    println!("per-layer occupancy (cycles):   {:?}", layer_cycles(&q));
    println!(
        "first-inference latency:        {} cycles",
        rep.first_latency_cycles
    );
    println!(
        "steady-state interval:          {} cycles",
        rep.steady_interval_cycles
    );
    println!(
        "total for {} inferences:       {} cycles",
        rep.inferences, rep.total_cycles
    );
    println!(
        "accuracy (streamed):            {:.1}%",
        100.0 * correct as f64 / preds.len() as f64
    );
    println!(
        "\nat the synthesis model's Fmax ({:.1} MHz):",
        hw.fmax_hz / 1e6
    );
    println!(
        "  first-inference latency:      {:.2} µs",
        rep.first_latency_ns(hw.fmax_hz) / 1000.0
    );
    println!(
        "  throughput:                   {:.2} k inferences/s",
        rep.throughput_per_s(hw.fmax_hz) / 1e3
    );
}
