//! One persistent serving engine, three numeric formats, interleaved
//! traffic.
//!
//! Trains one float MLP on Iris, quantizes it into the paper's three
//! 8-bit families (posit, minifloat, fixed), registers all of them in a
//! single `dp_serve` engine, then drives an interleaved request stream —
//! batches and single samples, round-robin across formats — through the
//! shared worker pool. Every response is checked bit-for-bit against the
//! per-sample `forward_bits` reference.
//!
//! Run with `cargo run --release --example serve_mixed`.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::{EngineConfig, ServeEngine};
use std::time::Instant;

fn main() {
    let split = dp_datasets::iris::load(9).split(50, 9).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 9);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 60,
            batch_size: 8,
            lr: 0.01,
            seed: 9,
        },
    );

    let engine = ServeEngine::new(EngineConfig {
        chunk_samples: 32,
        ..EngineConfig::default()
    });
    println!(
        "engine: {} worker(s), chunk = 32 samples\n",
        engine.workers()
    );

    let formats = [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
    ];
    let models: Vec<(dp_serve::ModelKey, QuantizedMlp)> = formats
        .into_iter()
        .map(|fmt| {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let key = engine
                .registry()
                .register("iris", q.clone())
                .expect("paper formats have EMAC datapaths");
            (key, q)
        })
        .collect();
    println!("registry:");
    for key in engine.registry().keys() {
        println!("  {key}");
    }

    // Interleaved traffic: 30 batch requests (100 samples each) round-robin
    // across the three formats, plus a single-sample request per batch.
    let batch: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(100)
        .cloned()
        .collect();
    // One reference evaluation per model, shared by its ten requests
    // (computed up front so the timed region is pure serving).
    let references: Vec<Vec<Vec<u32>>> = models
        .iter()
        .map(|(_, q)| batch.iter().map(|x| q.forward_bits(x)).collect())
        .collect();
    let t = Instant::now();
    let batches: Vec<_> = (0..30)
        .map(|i| {
            let (key, _) = &models[i % models.len()];
            engine.submit_forward(key, batch.clone()).expect("admitted")
        })
        .collect();
    let singles: Vec<_> = (0..30)
        .map(|i| {
            let (key, _) = &models[i % models.len()];
            engine
                .submit_classify_one(key, batch[i].clone())
                .expect("admitted")
        })
        .collect();

    let mut samples = 0usize;
    for (i, pending) in batches.into_iter().enumerate() {
        let (key, _) = &models[i % models.len()];
        let served = pending.wait().expect("request completed");
        samples += served.len();
        assert_eq!(
            &served,
            &references[i % models.len()],
            "{key}: engine output diverged"
        );
    }
    for (i, pending) in singles.into_iter().enumerate() {
        let (_, q) = &models[i % models.len()];
        assert_eq!(
            pending.wait().expect("request completed"),
            q.infer(&batch[i])
        );
        samples += 1;
    }
    let elapsed = t.elapsed();
    let stats = engine.stats();
    println!(
        "\nserved {samples} samples across 60 mixed-format requests in {:.1} ms \
         ({:.0} samples/s)",
        elapsed.as_secs_f64() * 1e3,
        samples as f64 / elapsed.as_secs_f64()
    );
    println!(
        "pool: {} jobs on {} worker(s), {} panic(s)",
        stats.jobs_run, stats.workers, stats.panics
    );
    println!("every response was bit-identical to per-sample forward_bits ✓");

    for (key, _) in &models {
        println!(
            "{key}: test accuracy {:.1}%",
            100.0 * engine.accuracy(key, &split.test).expect("served")
        );
    }
}
