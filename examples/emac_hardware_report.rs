//! Synthesis-model report for every 8-bit EMAC configuration: Fmax, LUTs,
//! FFs, DSPs, energy and EDP, plus a stage-by-stage netlist dump — the
//! per-unit view behind paper Figs. 6–8.
//!
//! Run with: `cargo run --release --example emac_hardware_report`

use dp_hw::{emac_netlist, paper_grid, report, Calib};

fn main() {
    let k = 128;
    let calib = Calib::default();
    println!("== 8-bit EMAC synthesis reports (k = {k} MAC dot products) ==\n");
    for spec in paper_grid(8) {
        println!("{}", report(spec, k, calib));
    }

    println!("\n== stage-by-stage netlists ==\n");
    for spec in paper_grid(8).into_iter().take(3) {
        let nl = emac_netlist(spec, k, calib);
        println!("{nl}");
        for (kind, luts) in nl.luts_by_kind() {
            if luts > 0 {
                println!("    {kind:?}: {luts} LUTs");
            }
        }
        println!();
    }
    println!("calibration: 28nm Virtex-7-class constants (see dp-hw::calib)");
}
