//! Serve the iris model over TCP: the deployable shape of the Deep
//! Positron datapath. Trains deterministically (seed 42 — `net_client`
//! trains the identical model to verify bit-identity over the wire),
//! registers posit/minifloat/fixed variants, binds a `dp_net` listener
//! and serves until a remote shutdown request, then drains gracefully
//! and prints the final settled metrics.
//!
//! ```text
//! cargo run --release --example net_serve [ADDR]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:0`; the bound address is printed as
//! `LISTENING <addr>` so drivers (the e2e CI job) can parse it. The
//! final Prometheus exposition is printed between `==== FINAL METRICS`
//! markers after the drain, when every lifecycle conservation law holds
//! exactly.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_gateway::{Gateway, TraceConfig};
use dp_minifloat::FloatFormat;
use dp_net::NetServer;
use dp_posit::PositFormat;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());

    // Deterministic model: identical constants in net_client's `verify`
    // mode reproduce it bit-for-bit on the client side.
    let split = dp_datasets::iris::load(42).split(50, 42).normalized();
    let mut mlp = Mlp::new(&[4, 16, 3], 42);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 0.01,
            seed: 42,
        },
    );

    let gw = Arc::new(
        Gateway::builder()
            .chunk_samples(16)
            .queue_capacity(64)
            .drain_deadline(Duration::from_secs(10))
            // Sample every request so the e2e job's /tracez scrape always
            // sees complete timelines (the default is 1-in-16).
            .trace(TraceConfig::every_request())
            .build(),
    );
    let formats = [
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
    ];
    for fmt in formats {
        let key = gw
            .registry()
            .register("iris", QuantizedMlp::quantize(&mlp, fmt))
            .expect("example formats have EMAC datapaths");
        println!("registered {key}");
    }

    let server = NetServer::builder(Arc::clone(&gw))
        .allow_remote_shutdown(true)
        .drain_deadline(Duration::from_secs(10))
        .read_timeout(Duration::from_secs(2))
        .bind(&addr)
        .expect("bind listener");
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush stdout");

    server.wait_for_shutdown_request();
    println!("shutdown requested; draining");
    server.shutdown();

    println!("==== FINAL METRICS ====");
    print!("{}", server.render_metrics());
    println!("==== END FINAL METRICS ====");
}
